//! The striped parallel-file-system model.
//!
//! Promotes the single-target latency model of [`crate::FsModel`] to a
//! PFS: a file's bytes are striped in fixed-size blocks round-robin
//! across `io_nodes` simulated I/O servers, each server serializes its
//! requests FCFS at its own bandwidth, and concurrent writers therefore
//! see their transfers *stretched* by queueing delay — the contention
//! the paper's free-FS Table II configuration deliberately leaves out.
//!
//! ## Determinism
//!
//! Server state (`busy_until` per I/O node) is mutated **only** from
//! events executing at the node's owner rank (`node % n_ranks`), and a
//! client's outstanding-request counter is mutated **only** from events
//! executing at the client's own rank. Both therefore inherit the
//! kernel's per-rank total event order `(time, dst, src, seq)` and the
//! model behaves identically on the sequential and parallel engines —
//! the same discipline the MPI layer uses for message delivery.
//!
//! A transfer of a file hashed to `h` proceeds as:
//!
//! 1. the client splits the bytes into per-node parts (see
//!    [`PfsModel::split`]), arms one FileIo wait and schedules an
//!    *arrival* event at each involved node's owner rank at
//!    `now + transit`;
//! 2. each arrival serves FCFS: `start = max(arrival, busy_until)`,
//!    `finish = start + request_overhead + bytes/bw`, advancing
//!    `busy_until`, and schedules a *completion* event back at the
//!    client rank at `finish + transit`;
//! 3. completion events decrement the client's rank-local counter; the
//!    one that reaches zero wakes the client, whose clock then stands at
//!    `max(finish) + transit` — the contended end-to-end latency.
//!
//! `transit` must be at least the engine lookahead (the builder derives
//! it from the interconnect's minimum latency and rejects smaller
//! values) so the cross-shard arrival/completion events always land
//! beyond the conservative window bound.

use parking_lot::Mutex;
use xsim_core::event::Action;
use xsim_core::vp::{VpState, WaitClass};
use xsim_core::{ctx, Kernel, Rank, SimTime};
use xsim_obs::ids;
use xsim_obs::service as obs;

use crate::FsService;

/// Configuration of the striped PFS extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsModel {
    /// Number of simulated I/O server nodes files are striped across.
    pub io_nodes: u32,
    /// Stripe unit: consecutive byte ranges of this size go to
    /// consecutive I/O nodes (round-robin from the file's home node).
    pub stripe_block: u64,
    /// Per-I/O-node write bandwidth, bytes/s.
    pub node_write_bw: f64,
    /// Per-I/O-node read bandwidth, bytes/s.
    pub node_read_bw: f64,
    /// Fixed service time a node charges per request before the
    /// transfer (metadata/RPC handling). This is what makes many small
    /// requests more expensive than few large ones — the effect
    /// aggregated checkpointing exploits.
    pub request_overhead: SimTime,
    /// One-way client ↔ I/O-node latency over the interconnect.
    /// `SimTime::ZERO` means "derive from the network model": the
    /// builder substitutes the interconnect's minimum link latency.
    pub transit: SimTime,
}

impl PfsModel {
    /// A representative configuration: 1 MiB stripes, 1 GB/s write and
    /// 2 GB/s read per node, 50 µs request overhead, transit derived
    /// from the network model.
    pub fn typical(io_nodes: u32) -> Self {
        PfsModel {
            io_nodes: io_nodes.max(1),
            stripe_block: 1 << 20,
            node_write_bw: 1.0e9,
            node_read_bw: 2.0e9,
            request_overhead: SimTime::from_micros(50),
            transit: SimTime::ZERO,
        }
    }

    /// The I/O node holding the first stripe block of a file whose name
    /// hashes to `hash`.
    pub fn home_node(&self, hash: u32) -> u32 {
        hash % self.io_nodes
    }

    /// Placement hash for a rank's unnamed (modeled-charge) transfers.
    ///
    /// `home_node` reduces modulo `io_nodes`, which is typically a
    /// power of two, so the hash must avalanche: a plain multiplicative
    /// hash leaves the low bits congruent to the rank's and any strided
    /// rank subset (e.g. the one-aggregator-per-group writers of
    /// aggregated checkpointing) would alias onto a single I/O node.
    pub fn placement_hash(rank: u32) -> u32 {
        // Murmur3 finalizer: full avalanche into the low bits.
        let mut h = rank.wrapping_mul(0x9E37_79B9);
        h ^= h >> 16;
        h = h.wrapping_mul(0x85EB_CA6B);
        h ^= h >> 13;
        h = h.wrapping_mul(0xC2B2_AE35);
        h ^= h >> 16;
        h
    }

    /// The I/O node serving stripe block `block` of the file.
    pub fn node_of_block(&self, hash: u32, block: u64) -> u32 {
        ((self.home_node(hash) as u64 + block) % self.io_nodes as u64) as u32
    }

    /// Split an `nbytes` transfer into per-node parts: whole stripe
    /// blocks round-robin from the home node, last block partial.
    /// Returns `(node, bytes)` pairs sorted by node id, omitting nodes
    /// that receive nothing.
    pub fn split(&self, hash: u32, nbytes: u64) -> Vec<(u32, u64)> {
        if nbytes == 0 {
            return Vec::new();
        }
        let n = self.io_nodes as u64;
        let blocks = nbytes.div_ceil(self.stripe_block);
        let full_rounds = blocks / n;
        let rem = blocks % n;
        let home = self.home_node(hash) as u64;
        let tail_short = blocks * self.stripe_block - nbytes;
        let last_node = (home + blocks - 1) % n;
        let mut parts = Vec::new();
        for node in 0..n {
            // Blocks node gets beyond the full rounds: one if it lies in
            // the first `rem` positions of the round-robin from `home`.
            let pos = (node + n - home) % n;
            let mut bytes =
                full_rounds * self.stripe_block + if pos < rem { self.stripe_block } else { 0 };
            if node == last_node {
                bytes -= tail_short;
            }
            if bytes > 0 {
                parts.push((node as u32, bytes));
            }
        }
        parts
    }

    /// The rank whose event stream owns I/O node `node` — server state
    /// is only ever mutated from events at this rank.
    pub fn owner(node: u32, n_ranks: usize) -> Rank {
        Rank::new(node as usize % n_ranks)
    }

    fn xfer(&self, bytes: u64, bw: f64) -> SimTime {
        if bw.is_infinite() || bytes == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_secs_f64(bytes as f64 / bw)
        }
    }

    /// FCFS service time of one `bytes`-sized request at a node.
    pub fn service_time(&self, bytes: u64, write: bool) -> SimTime {
        let bw = if write {
            self.node_write_bw
        } else {
            self.node_read_bw
        };
        self.request_overhead + self.xfer(bytes, bw)
    }
}

/// FNV-1a hash of a file name; determines stripe placement.
pub fn file_hash(name: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.as_bytes() {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Shared run-time state of the simulated I/O servers. One instance per
/// run, shared by every shard's [`FsService`].
pub struct PfsState {
    inner: Mutex<PfsInner>,
}

struct PfsInner {
    /// Per-node FCFS horizon; index = I/O node id. Mutated only from
    /// owner-rank events.
    busy_until: Vec<SimTime>,
    /// Per-client-rank outstanding request count (grown lazily).
    /// Mutated only from events/polls at the client rank itself.
    pending: Vec<u32>,
}

impl PfsState {
    /// Fresh server state for `model`.
    pub fn new(model: PfsModel) -> Self {
        PfsState {
            inner: Mutex::new(PfsInner {
                busy_until: vec![SimTime::ZERO; model.io_nodes as usize],
                pending: Vec::new(),
            }),
        }
    }

    /// Serve one request FCFS at `node`: returns `(queued, finish)`.
    fn serve(&self, node: u32, arrival: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let mut inner = self.inner.lock();
        let busy = inner.busy_until[node as usize];
        let start = busy.max(arrival);
        let finish = start + service;
        inner.busy_until[node as usize] = finish;
        (start - arrival, finish)
    }

    fn op_begin(&self, rank: usize, parts: u32) {
        let mut inner = self.inner.lock();
        if inner.pending.len() <= rank {
            inner.pending.resize(rank + 1, 0);
        }
        debug_assert_eq!(inner.pending[rank], 0, "one striped op per VP at a time");
        inner.pending[rank] = parts;
    }

    /// Decrement the rank's outstanding count; true when it reaches 0.
    fn op_complete(&self, rank: usize) -> bool {
        let mut inner = self.inner.lock();
        inner.pending[rank] -= 1;
        inner.pending[rank] == 0
    }

    fn op_pending(&self, rank: usize) -> bool {
        let inner = self.inner.lock();
        inner.pending.get(rank).is_some_and(|p| *p > 0)
    }

    /// Per-node busy horizons (test/diagnostic view).
    pub fn busy_until(&self) -> Vec<SimTime> {
        self.inner.lock().busy_until.clone()
    }
}

/// Run one striped transfer from the current VP: split across I/O
/// nodes, contend FCFS at each, return when the slowest part's
/// completion arrives back. No-op when the byte count is zero.
pub(crate) async fn transfer(model: PfsModel, nbytes: u64, hash: u32, write: bool) {
    let token = ctx::with_kernel(|k, rank| {
        let parts = model.split(hash, nbytes);
        if parts.is_empty() {
            return None;
        }
        let state = k
            .service::<FsService>()
            .pfs
            .clone()
            .expect("FsService with a PFS model must carry PfsState");
        let n_ranks = k.cfg.n_ranks;
        let now = k.vp(rank).clock();
        let token = k
            .vp_mut(rank)
            .begin_wait(WaitClass::FileIo, "pfs striped I/O");
        state.op_begin(rank.idx(), parts.len() as u32);
        let arrive = now + model.transit;
        let transit = model.transit;
        for (node, bytes) in parts {
            let service = model.service_time(bytes, write);
            let st = state.clone();
            k.schedule_at(
                arrive,
                PfsModel::owner(node, n_ranks),
                Action::call(move |k: &mut Kernel| {
                    let (queued, finish) = st.serve(node, arrive, service);
                    obs::record(k, ids::FS_STRIPE_REQS, 1);
                    obs::record(k, ids::FS_STRIPE_BYTES, bytes);
                    obs::record(k, ids::FS_STRIPE_QUEUE_NS, queued.as_nanos());
                    let done_at = finish + transit;
                    k.schedule_at(
                        done_at,
                        rank,
                        Action::call(move |k: &mut Kernel| {
                            if st.op_complete(rank.idx()) {
                                let vp = k.vp(rank);
                                if vp.state() == VpState::Blocked && vp.wait_token() == token {
                                    k.wake(rank, done_at);
                                }
                            }
                        }),
                    );
                }),
            );
        }
        Some(token)
    });
    let Some(token) = token else { return };
    loop {
        let _ = ctx::block_prearmed(token).await;
        let done = ctx::with_kernel(|k, rank| {
            let still = k
                .service::<FsService>()
                .pfs
                .as_ref()
                .is_some_and(|st| st.op_pending(rank.idx()));
            if still {
                // Spurious wake (e.g. a message arrival releasing
                // FileIo-class waits): re-enter under the same token.
                k.vp_mut(rank)
                    .rearm_wait(WaitClass::FileIo, "pfs striped I/O", token);
            }
            !still
        });
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: u32, block: u64) -> PfsModel {
        PfsModel {
            io_nodes: nodes,
            stripe_block: block,
            node_write_bw: 1.0e9,
            node_read_bw: 2.0e9,
            request_overhead: SimTime::from_micros(50),
            transit: SimTime::from_micros(1),
        }
    }

    #[test]
    fn placement_is_round_robin_from_home() {
        let m = model(4, 1024);
        let h = 7; // home node 3
        assert_eq!(m.home_node(h), 3);
        assert_eq!(m.node_of_block(h, 0), 3);
        assert_eq!(m.node_of_block(h, 1), 0);
        assert_eq!(m.node_of_block(h, 4), 3);
    }

    #[test]
    fn placement_hash_spreads_strided_rank_sets() {
        // One writer per 8-rank group (aggregated checkpointing) over a
        // power-of-two node pool: the avalanched hash must not alias
        // every writer onto one home node the way `rank % io_nodes`
        // (or an un-mixed multiplicative hash) does.
        let m = PfsModel {
            io_nodes: 4,
            ..PfsModel::typical(4)
        };
        for stride in [4u32, 8, 16] {
            let mut used = std::collections::BTreeSet::new();
            for g in 0..32 {
                used.insert(m.home_node(PfsModel::placement_hash(g * stride)));
            }
            assert!(
                used.len() >= 3,
                "stride {stride} writers collapsed onto {used:?}"
            );
        }
    }

    #[test]
    fn split_conserves_bytes_and_matches_blockwise_placement() {
        let m = model(3, 100);
        for (hash, nbytes) in [
            (0u32, 1u64),
            (1, 99),
            (2, 100),
            (5, 101),
            (9, 1000),
            (4, 950),
        ] {
            let parts = m.split(hash, nbytes);
            assert_eq!(parts.iter().map(|(_, b)| b).sum::<u64>(), nbytes);
            // Oracle: place block by block.
            let mut acc = vec![0u64; m.io_nodes as usize];
            let blocks = nbytes.div_ceil(m.stripe_block);
            for b in 0..blocks {
                let sz = (nbytes - b * m.stripe_block).min(m.stripe_block);
                acc[m.node_of_block(hash, b) as usize] += sz;
            }
            for (node, bytes) in &parts {
                assert_eq!(acc[*node as usize], *bytes, "hash {hash} nbytes {nbytes}");
            }
            assert!(parts.windows(2).all(|w| w[0].0 < w[1].0), "sorted by node");
        }
        assert!(m.split(3, 0).is_empty());
    }

    #[test]
    fn fcfs_stretch_is_monotonic_in_concurrent_writers() {
        // Queueing delay at one node grows monotonically with the
        // number of simultaneously arriving requests ahead of yours.
        let m = model(1, 1 << 20);
        let service = m.service_time(1 << 20, true);
        let mut last_total = SimTime::ZERO;
        for writers in 1..=8u32 {
            let st = PfsState::new(m);
            let mut finish = SimTime::ZERO;
            for _ in 0..writers {
                let (_, f) = st.serve(0, SimTime::ZERO, service);
                finish = f;
            }
            assert!(finish > last_total, "{writers} writers");
            last_total = finish;
        }
        // And the k-th writer waits exactly (k-1) service times.
        let st = PfsState::new(m);
        for kth in 0..4u32 {
            let (queued, _) = st.serve(0, SimTime::ZERO, service);
            assert_eq!(queued.as_nanos(), kth as u64 * service.as_nanos());
        }
    }

    #[test]
    fn file_hash_spreads_names() {
        let hashes: Vec<u32> = (0..16)
            .map(|r| file_hash(&format!("ckpt/00000000000000000001/rank{r:07}")))
            .collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "rank files hash distinctly");
    }

    #[test]
    fn owner_maps_nodes_onto_ranks() {
        assert_eq!(PfsModel::owner(0, 4), Rank::new(0));
        assert_eq!(PfsModel::owner(5, 4), Rank::new(1));
        assert_eq!(PfsModel::owner(3, 2), Rank::new(1));
    }
}
