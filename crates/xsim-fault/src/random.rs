//! MTTF-driven random failure injection.
//!
//! The paper's Table II experiments choose "a random MPI rank within the
//! total number of simulated MPI ranks and a random time within
//! 2·MTTF_s", with the draw repeated independently for every application
//! run — start→finish/failure and restart→finish/failure (§V-C). A drawn
//! time beyond the run's actual duration simply never activates, which
//! is how runs with zero failures arise.

use xsim_core::{DetRng, SimTime};

/// Distribution of random failure times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureModel {
    /// The paper's worst-case model: failure time uniform in
    /// `[0, 2·MTTF)` — "this evenly distributed simulated system MTTF
    /// applies to each application run separately" (§V-C).
    UniformTwiceMttf {
        /// System mean time to failure.
        mttf: SimTime,
    },
    /// Exponential inter-failure times with the given mean (extension).
    Exponential {
        /// System mean time to failure.
        mttf: SimTime,
    },
    /// Never inject (baseline rows of Table II).
    None,
}

/// One per-run draw: which rank fails and when (relative to run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDraw {
    /// The rank that will fail (world rank).
    pub rank: usize,
    /// Scheduled failure time relative to the run's start.
    pub at: SimTime,
}

impl FailureModel {
    /// Draw the failure for run number `run_index` (0 = initial run,
    /// 1 = first restart, …). Deterministic in `(seed, run_index)`.
    pub fn draw(&self, seed: u64, run_index: u64, n_ranks: usize) -> Option<RunDraw> {
        let mut rng = DetRng::stream(seed, DetRng::STREAM_FAILURES ^ run_index.rotate_left(24));
        match *self {
            FailureModel::None => None,
            FailureModel::UniformTwiceMttf { mttf } => {
                let span = 2 * mttf.as_nanos().max(1);
                Some(RunDraw {
                    rank: rng.gen_index(n_ranks),
                    at: SimTime(rng.gen_range_u64(span)),
                })
            }
            FailureModel::Exponential { mttf } => Some(RunDraw {
                rank: rng.gen_index(n_ranks),
                at: SimTime::from_secs_f64(rng.gen_exponential(mttf.as_secs_f64())),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_draws() {
        assert!(FailureModel::None.draw(1, 0, 10).is_none());
    }

    #[test]
    fn uniform_draw_is_deterministic_and_bounded() {
        let m = FailureModel::UniformTwiceMttf {
            mttf: SimTime::from_secs(3000),
        };
        let a = m.draw(42, 0, 32768).unwrap();
        let b = m.draw(42, 0, 32768).unwrap();
        assert_eq!(a, b);
        for run in 0..200 {
            let d = m.draw(42, run, 32768).unwrap();
            assert!(d.rank < 32768);
            assert!(d.at < SimTime::from_secs(6000));
        }
    }

    #[test]
    fn different_runs_draw_differently() {
        let m = FailureModel::UniformTwiceMttf {
            mttf: SimTime::from_secs(3000),
        };
        let a = m.draw(42, 0, 32768).unwrap();
        let b = m.draw(42, 1, 32768).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_mean_is_near_mttf() {
        let mttf = SimTime::from_secs(3000);
        let m = FailureModel::UniformTwiceMttf { mttf };
        let n = 4000;
        let sum: f64 = (0..n)
            .map(|i| m.draw(7, i, 100).unwrap().at.as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 3000.0).abs() < 100.0,
            "uniform [0, 2*MTTF) mean {mean} should be ~MTTF"
        );
    }

    #[test]
    fn exponential_mean_is_near_mttf() {
        let mttf = SimTime::from_secs(1000);
        let m = FailureModel::Exponential { mttf };
        let n = 4000;
        let sum: f64 = (0..n)
            .map(|i| m.draw(9, i, 100).unwrap().at.as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 1000.0).abs() < 60.0, "exponential mean {mean}");
    }
}
