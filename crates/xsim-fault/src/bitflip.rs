//! Bit-flip injection into a simulated victim process.
//!
//! Reproduces the Finject experiment behind the paper's Table I (§II-C):
//! "register bit flips were introduced into a user-space application
//! (victim) using ptrace(2). While the detector watches the victim
//! process and reports on its exit, the analyzer counts the injections
//! and detections." The paper's substrate — a native Linux process — is
//! replaced by a *simulated* victim with a structured memory image
//! (text/pointer/data/unused segments); a flip into a sensitive segment
//! crashes the victim, a flip into plain data silently corrupts it, and
//! a flip into unused memory is benign. The injections-to-failure
//! distribution is therefore geometric-like, matching the regime of
//! Table I (mean ≫ median, long tail).

use xsim_core::DetRng;

/// Sizes of the victim's memory segments, in bytes. The defaults are
/// calibrated so the per-injection crash probability is ≈ 1/22, the
/// regime of the paper's Table I (mean 21.97 injections to failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimLayout {
    /// Executable text; flips here crash the victim (illegal
    /// instruction / wild jump).
    pub text_bytes: usize,
    /// Pointer-dense segment (stack frames, GOT); flips here crash the
    /// victim (illegal memory access).
    pub pointer_bytes: usize,
    /// Plain data; flips here silently corrupt output.
    pub data_bytes: usize,
    /// Allocated-but-unused memory; flips here are benign.
    pub unused_bytes: usize,
}

impl Default for VictimLayout {
    fn default() -> Self {
        // 1 MiB image, ~4.5% sensitive.
        VictimLayout {
            text_bytes: 24 * 1024,
            pointer_bytes: 24 * 1024,
            data_bytes: 464 * 1024,
            unused_bytes: 512 * 1024,
        }
    }
}

impl VictimLayout {
    /// Total image size.
    pub fn total_bytes(&self) -> usize {
        self.text_bytes + self.pointer_bytes + self.data_bytes + self.unused_bytes
    }

    /// Probability that one uniformly placed bit flip crashes the victim.
    pub fn crash_probability(&self) -> f64 {
        (self.text_bytes + self.pointer_bytes) as f64 / self.total_bytes() as f64
    }
}

/// Outcome of one injected bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipOutcome {
    /// The victim crashed (detected failure; the campaign's detector
    /// "reports on its exit").
    Crashed,
    /// The flip landed in live data: the victim keeps running but its
    /// output is corrupt (the silent-data-corruption case RedMPI
    /// targets, §II-C).
    SilentCorruption,
    /// The flip landed in unused memory; no observable effect.
    Benign,
}

/// A simulated victim process accepting bit-flip injections.
#[derive(Debug)]
pub struct Victim {
    layout: VictimLayout,
    injections: u32,
    corrupted: bool,
    crashed: bool,
}

impl Victim {
    /// A fresh victim with the given memory layout.
    pub fn new(layout: VictimLayout) -> Self {
        Victim {
            layout,
            injections: 0,
            corrupted: false,
            crashed: false,
        }
    }

    /// Number of injections performed so far.
    pub fn injections(&self) -> u32 {
        self.injections
    }

    /// Whether any silent corruption accumulated.
    pub fn is_corrupted(&self) -> bool {
        self.corrupted
    }

    /// Whether the victim crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Inject one uniformly placed bit flip (the ptrace(2) analogue).
    /// Panics if the victim already crashed (the real tool would fail to
    /// attach).
    pub fn inject(&mut self, rng: &mut DetRng) -> FlipOutcome {
        assert!(!self.crashed, "cannot inject into a crashed victim");
        self.injections += 1;
        let total_bits = self.layout.total_bytes() as u64 * 8;
        let bit = rng.gen_range_u64(total_bits);
        let byte = (bit / 8) as usize;
        let sensitive = self.layout.text_bytes + self.layout.pointer_bytes;
        let live_data = sensitive + self.layout.data_bytes;
        if byte < sensitive {
            self.crashed = true;
            FlipOutcome::Crashed
        } else if byte < live_data {
            self.corrupted = true;
            FlipOutcome::SilentCorruption
        } else {
            FlipOutcome::Benign
        }
    }

    /// Inject until the victim crashes; returns the number of injections
    /// needed (the per-victim figure aggregated in Table I).
    pub fn run_to_failure(&mut self, rng: &mut DetRng, max_injections: u32) -> Option<u32> {
        while self.injections < max_injections {
            if self.inject(rng) == FlipOutcome::Crashed {
                return Some(self.injections);
            }
        }
        None
    }
}

/// Aggregate statistics over a campaign of victims — the fields of the
/// paper's Table I.
///
/// ```
/// use xsim_fault::bitflip::{run_campaign, CampaignStats, VictimLayout};
///
/// let counts = run_campaign(100, 100, VictimLayout::default(), 17);
/// let stats = CampaignStats::from_counts(&counts).unwrap();
/// // Geometric-like regime, as in the paper: mean >> median >= mode.
/// assert!(stats.mean > stats.median);
/// assert!(stats.min >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Number of victim application instances.
    pub victims: u32,
    /// Total injected failures across all runs.
    pub injections: u64,
    /// Minimum injections to victim failure.
    pub min: u32,
    /// Maximum injections to victim failure.
    pub max: u32,
    /// Mean injections to victim failure.
    pub mean: f64,
    /// Median injections to victim failure.
    pub median: f64,
    /// Mode (most frequent count; smallest on ties).
    pub mode: u32,
    /// Population standard deviation.
    pub stddev: f64,
}

impl CampaignStats {
    /// Compute the Table I statistics from per-victim injection counts.
    /// Returns `None` for an empty campaign.
    pub fn from_counts(counts: &[u32]) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        let n = counts.len() as f64;
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        let sum: u64 = counts.iter().map(|&c| c as u64).sum();
        let mean = sum as f64 / n;
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2] as f64
        } else {
            (sorted[sorted.len() / 2 - 1] as f64 + sorted[sorted.len() / 2] as f64) / 2.0
        };
        // Mode: most frequent value, smallest value on ties.
        let mut best = (0u32, 0usize);
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == v {
                j += 1;
            }
            if j - i > best.1 {
                best = (v, j - i);
            }
            i = j;
        }
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Some(CampaignStats {
            victims: counts.len() as u32,
            injections: sum,
            min,
            max,
            mean,
            median,
            mode: best.0,
            stddev: var.sqrt(),
        })
    }
}

/// Run a Table-I-style campaign: `victims` victim instances, each
/// injected until failure (or `max_injections`, the paper's "arbitrary
/// maximum of 100"). Returns the per-victim counts; victims that never
/// crashed are excluded from the counts (none are expected with the
/// default layout and cap).
pub fn run_campaign(
    victims: u32,
    max_injections: u32,
    layout: VictimLayout,
    seed: u64,
) -> Vec<u32> {
    let mut counts = Vec::with_capacity(victims as usize);
    for v in 0..victims {
        let mut rng = DetRng::stream(seed, DetRng::STREAM_CAMPAIGN ^ (v as u64).rotate_left(32));
        let mut victim = Victim::new(layout);
        if let Some(c) = victim.run_to_failure(&mut rng, max_injections) {
            counts.push(c);
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_probability() {
        let l = VictimLayout::default();
        assert_eq!(l.total_bytes(), 1024 * 1024);
        let p = l.crash_probability();
        assert!((p - 1.0 / 21.33).abs() < 0.005, "p = {p}");
    }

    #[test]
    fn victim_state_machine() {
        let mut rng = DetRng::stream(1, 2);
        let mut v = Victim::new(VictimLayout {
            text_bytes: 1024,
            pointer_bytes: 0,
            data_bytes: 0,
            unused_bytes: 0,
        });
        // Everything is text: first injection crashes.
        assert_eq!(v.inject(&mut rng), FlipOutcome::Crashed);
        assert!(v.is_crashed());
        assert_eq!(v.injections(), 1);
    }

    #[test]
    #[should_panic(expected = "crashed victim")]
    fn cannot_inject_into_crashed() {
        let mut rng = DetRng::stream(1, 2);
        let mut v = Victim::new(VictimLayout {
            text_bytes: 8,
            pointer_bytes: 0,
            data_bytes: 0,
            unused_bytes: 0,
        });
        v.inject(&mut rng);
        v.inject(&mut rng);
    }

    #[test]
    fn data_flips_corrupt_silently() {
        let mut rng = DetRng::stream(3, 4);
        let mut v = Victim::new(VictimLayout {
            text_bytes: 0,
            pointer_bytes: 0,
            data_bytes: 64,
            unused_bytes: 0,
        });
        assert_eq!(v.inject(&mut rng), FlipOutcome::SilentCorruption);
        assert!(v.is_corrupted());
        assert!(!v.is_crashed());
    }

    #[test]
    fn stats_match_hand_computation() {
        let counts = [1, 4, 4, 7, 9];
        let s = CampaignStats::from_counts(&counts).unwrap();
        assert_eq!(s.victims, 5);
        assert_eq!(s.injections, 25);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.mode, 4);
        assert!((s.stddev - 2.756809).abs() < 1e-5);
    }

    #[test]
    fn stats_even_median_and_tie_mode() {
        let counts = [2, 2, 3, 3];
        let s = CampaignStats::from_counts(&counts).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mode, 2, "smallest value wins ties");
        assert!(CampaignStats::from_counts(&[]).is_none());
    }

    #[test]
    fn campaign_is_deterministic_and_geometric_like() {
        let counts = run_campaign(100, 1000, VictimLayout::default(), 0xF00D);
        let counts2 = run_campaign(100, 1000, VictimLayout::default(), 0xF00D);
        assert_eq!(counts, counts2);
        let s = CampaignStats::from_counts(&counts).unwrap();
        assert_eq!(s.victims, 100);
        // Geometric regime: mean near 1/p ≈ 21.3, median below mean,
        // long right tail.
        assert!(s.mean > 10.0 && s.mean < 40.0, "mean {}", s.mean);
        assert!(s.median < s.mean, "median {} mean {}", s.median, s.mean);
        assert!(s.max > 2 * s.mean as u32, "max {}", s.max);
        assert!(s.min >= 1);
    }
}
