//! Component-based system reliability models.
//!
//! The paper's future work item (2) is "developing component-based
//! system reliability models" (§VI); its related-work section defines
//! the industry metric: "FIT, the number of failures that can be
//! expected in 10⁹ hours of operation" (§II-B). This module composes
//! per-component FIT rates into node and system failure processes and
//! generates concrete failure schedules for the injector.

use crate::schedule::FailureSchedule;
use xsim_core::{DetRng, SimTime};

/// Hours per FIT denominator (10⁹ device-hours).
const FIT_HOURS: f64 = 1.0e9;

/// A component class with a FIT rate, e.g. a DIMM, a CPU socket, a NIC,
/// a voltage regulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Human-readable name.
    pub name: String,
    /// Failures per 10⁹ operating hours (FIT).
    pub fit: f64,
}

impl Component {
    /// Define a component class.
    pub fn new(name: &str, fit: f64) -> Self {
        assert!(fit.is_finite() && fit >= 0.0, "FIT must be non-negative");
        Component {
            name: name.to_string(),
            fit,
        }
    }

    /// Failure rate in failures/hour.
    pub fn rate_per_hour(&self) -> f64 {
        self.fit / FIT_HOURS
    }
}

/// The reliability bill-of-materials of one compute node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeReliability {
    parts: Vec<(Component, u32)>,
}

impl NodeReliability {
    /// Empty bill of materials.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` instances of a component class.
    pub fn with(mut self, component: Component, count: u32) -> Self {
        self.parts.push((component, count));
        self
    }

    /// A representative 2010s HPC node: 2 CPU sockets, 16 DIMMs, 1 NIC,
    /// 1 board/PSU assembly. FIT values in the range reliability
    /// literature reports for server parts.
    pub fn typical_node() -> Self {
        NodeReliability::new()
            .with(Component::new("cpu-socket", 50.0), 2)
            .with(Component::new("dimm", 75.0), 16)
            .with(Component::new("nic", 100.0), 1)
            .with(Component::new("board+psu", 300.0), 1)
    }

    /// The parts list.
    pub fn parts(&self) -> &[(Component, u32)] {
        &self.parts
    }

    /// Aggregate node failure rate, failures/hour (series system: any
    /// component failure fails the node, rates add).
    pub fn rate_per_hour(&self) -> f64 {
        self.parts
            .iter()
            .map(|(c, n)| c.rate_per_hour() * *n as f64)
            .sum()
    }

    /// Node mean time to failure.
    pub fn mttf(&self) -> SimTime {
        let r = self.rate_per_hour();
        if r <= 0.0 {
            SimTime::MAX
        } else {
            SimTime::from_secs_f64(3600.0 / r)
        }
    }
}

/// A whole simulated machine: `n_nodes` identical nodes failing
/// independently (the exponential/series model vendors use to bound FIT,
/// paper §II-B).
///
/// ```
/// use xsim_fault::{NodeReliability, SystemReliability};
///
/// let machine = SystemReliability::new(NodeReliability::typical_node(), 32_768);
/// let hours = machine.system_mttf().as_secs_f64() / 3600.0;
/// assert!(hours > 10.0 && hours < 30.0); // ~18 h at paper scale
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReliability {
    /// Per-node model.
    pub node: NodeReliability,
    /// Number of nodes.
    pub n_nodes: usize,
}

impl SystemReliability {
    /// Compose a system from identical nodes.
    pub fn new(node: NodeReliability, n_nodes: usize) -> Self {
        SystemReliability { node, n_nodes }
    }

    /// System failure rate, failures/hour.
    pub fn rate_per_hour(&self) -> f64 {
        self.node.rate_per_hour() * self.n_nodes as f64
    }

    /// System mean time to failure — the `MTTF_s` knob of Table II,
    /// derived from component FITs instead of being asserted.
    pub fn system_mttf(&self) -> SimTime {
        let r = self.rate_per_hour();
        if r <= 0.0 {
            SimTime::MAX
        } else {
            SimTime::from_secs_f64(3600.0 / r)
        }
    }

    /// Generate a concrete failure schedule over `[0, horizon)`: each
    /// node draws independent exponential inter-failure times; every
    /// failure before the horizon becomes a `(rank, time)` pair (node =
    /// rank under the paper's one-rank-per-node placement). Deterministic
    /// in `seed`.
    pub fn generate_schedule(&self, horizon: SimTime, seed: u64) -> FailureSchedule {
        let mut schedule = FailureSchedule::new();
        let node_rate = self.node.rate_per_hour();
        if node_rate <= 0.0 {
            return schedule;
        }
        let mean_secs = 3600.0 / node_rate;
        for node in 0..self.n_nodes {
            let mut rng = DetRng::stream(seed, 0x3E11_AB1E ^ (node as u64).rotate_left(17));
            let mut t = 0.0f64;
            loop {
                t += rng.gen_exponential(mean_secs);
                let at = SimTime::from_secs_f64(t);
                if at >= horizon {
                    break;
                }
                // A process dies once per run; subsequent failures of the
                // same node are still recorded for restart studies (the
                // node is repaired/replaced between runs).
                schedule.push(node, at);
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_is_failures_per_1e9_hours() {
        let c = Component::new("dimm", 1.0e9);
        assert_eq!(c.rate_per_hour(), 1.0);
        let c = Component::new("dimm", 100.0);
        assert!((c.rate_per_hour() - 1.0e-7).abs() < 1e-20);
    }

    #[test]
    fn node_rates_add_in_series() {
        let node = NodeReliability::new()
            .with(Component::new("a", 100.0), 2)
            .with(Component::new("b", 300.0), 1);
        // 2*100 + 300 = 500 FIT.
        assert!((node.rate_per_hour() - 500.0 / 1e9).abs() < 1e-18);
        // MTTF = 1e9/500 hours = 2,000,000 h.
        assert_eq!(node.mttf(), SimTime::from_secs_f64(2.0e6 * 3600.0));
    }

    #[test]
    fn typical_node_mttf_is_hpc_plausible() {
        let node = NodeReliability::typical_node();
        let mttf_hours = node.mttf().as_secs_f64() / 3600.0;
        // 2*50 + 16*75 + 100 + 300 = 1700 FIT → ~588k hours ≈ 67 years.
        assert!((mttf_hours - 1e9 / 1700.0).abs() < 1.0);
    }

    #[test]
    fn system_mttf_scales_inversely_with_node_count() {
        let node = NodeReliability::typical_node();
        let one = SystemReliability::new(node.clone(), 1).system_mttf();
        let many = SystemReliability::new(node, 32_768).system_mttf();
        let ratio = one.as_secs_f64() / many.as_secs_f64();
        assert!((ratio - 32_768.0).abs() < 1.0);
        // The paper's simulated 32,768-node machine with typical parts:
        // system MTTF ≈ 588k h / 32768 ≈ 18 h — the regime where
        // checkpoint-interval tuning matters.
        let hours = many.as_secs_f64() / 3600.0;
        assert!(hours > 10.0 && hours < 30.0, "system MTTF {hours} h");
    }

    #[test]
    fn zero_rate_never_fails() {
        let node = NodeReliability::new();
        assert_eq!(node.mttf(), SimTime::MAX);
        let sys = SystemReliability::new(node, 100);
        assert_eq!(sys.system_mttf(), SimTime::MAX);
        assert!(sys
            .generate_schedule(SimTime::from_secs(1_000_000), 1)
            .is_empty());
    }

    #[test]
    fn schedule_generation_is_deterministic_and_bounded() {
        let sys = SystemReliability::new(NodeReliability::typical_node(), 4096);
        let horizon = SimTime::from_secs_f64(6.0 * 3600.0);
        let a = sys.generate_schedule(horizon, 42);
        let b = sys.generate_schedule(horizon, 42);
        assert_eq!(a, b);
        for (rank, at) in a.iter() {
            assert!(rank < 4096);
            assert!(at < horizon);
        }
        // Expected count ≈ n_nodes * horizon/node_mttf = 4096 * 6h/588kh
        // ≈ 0.042 ... small; over a long horizon more failures appear.
        let long = sys.generate_schedule(SimTime::from_secs_f64(2000.0 * 3600.0), 42);
        assert!(
            long.len() > 2,
            "long horizon should see failures: {}",
            long.len()
        );
        let c = sys.generate_schedule(horizon, 43);
        assert!(a != c || a.is_empty(), "different seeds should differ");
    }
}
