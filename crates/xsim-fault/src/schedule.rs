//! MPI process-failure schedules.
//!
//! xSim accepts "a simulated MPI process failure schedule in the form of
//! rank/time pairs on the command line or via an environment variable"
//! (paper §IV-B). [`FailureSchedule`] is the same concept: a list of
//! `(rank, earliest failure time)` pairs with a textual format
//! `rank:seconds[,rank:seconds...]`.

use std::fmt;
use std::str::FromStr;
use xsim_core::SimTime;

/// A failure schedule: `(rank, scheduled time)` pairs. The scheduled
/// time is the *earliest* time of failure; actual activation follows the
/// paper's clock-update rule (§IV-B).
///
/// ```
/// use xsim_fault::FailureSchedule;
/// use xsim_core::SimTime;
///
/// let schedule: FailureSchedule = "12:3500.5,99:120".parse().unwrap();
/// assert_eq!(schedule.len(), 2);
/// assert_eq!(schedule.entries()[0], (12, SimTime::from_secs_f64(3500.5)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    entries: Vec<(usize, SimTime)>,
}

/// Error parsing a schedule string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid failure schedule: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FailureSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one failure.
    pub fn push(&mut self, rank: usize, at: SimTime) {
        self.entries.push((rank, at));
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, rank: usize, at: SimTime) -> Self {
        self.push(rank, at);
        self
    }

    /// The scheduled failures.
    pub fn entries(&self) -> &[(usize, SimTime)] {
        &self.entries
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shift every entry by `offset` (used when a schedule expressed
    /// relative to a run start is applied to a continued virtual
    /// timeline, paper §IV-E).
    pub fn offset_by(&self, offset: SimTime) -> FailureSchedule {
        FailureSchedule {
            entries: self
                .entries
                .iter()
                .map(|(r, t)| (*r, offset + *t))
                .collect(),
        }
    }

    /// Re-address every entry through a rank map (team-aware schedules:
    /// a schedule authored against *logical* ranks is remapped onto the
    /// physical ranks of a replicated world — e.g. onto each logical
    /// rank's primary, or a chosen replica).
    pub fn map_ranks(&self, f: impl Fn(usize) -> usize) -> FailureSchedule {
        FailureSchedule {
            entries: self.entries.iter().map(|(r, t)| (f(*r), *t)).collect(),
        }
    }

    /// Read a schedule from the `XSIM_FAILURES` environment variable, if
    /// set (xSim's environment-variable injection path, §IV-B).
    pub fn from_env() -> Result<Option<Self>, ParseError> {
        match std::env::var("XSIM_FAILURES") {
            Ok(s) if !s.trim().is_empty() => s.parse().map(Some),
            _ => Ok(None),
        }
    }

    /// Iterate as `(rank, time)` pairs suitable for
    /// `SimBuilder::inject_failures`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, SimTime)> + '_ {
        self.entries.iter().copied()
    }
}

impl FromStr for FailureSchedule {
    type Err = ParseError;

    /// Parse `rank:seconds[,rank:seconds...]`, e.g. `"12:3500.5,99:120"`.
    /// Whitespace around entries is ignored; seconds may be fractional.
    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut out = FailureSchedule::new();
        for item in s.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (rank_s, time_s) = item
                .split_once(':')
                .ok_or_else(|| ParseError(format!("missing ':' in '{item}'")))?;
            let rank: usize = rank_s
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("bad rank in '{item}'")))?;
            let secs: f64 = time_s
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("bad time in '{item}'")))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(ParseError(format!(
                    "negative or non-finite time in '{item}'"
                )));
            }
            out.push(rank, SimTime::from_secs_f64(secs));
        }
        Ok(out)
    }
}

impl fmt::Display for FailureSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, t) in &self.entries {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{r}:{}", t.as_secs_f64())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs() {
        let s: FailureSchedule = "12:3500.5, 99:120".parse().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.entries()[0], (12, SimTime::from_secs_f64(3500.5)));
        assert_eq!(s.entries()[1], (99, SimTime::from_secs(120)));
    }

    #[test]
    fn parses_empty_and_trailing_commas() {
        let s: FailureSchedule = "".parse().unwrap();
        assert!(s.is_empty());
        let s: FailureSchedule = "1:2,,".parse().unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!("12".parse::<FailureSchedule>().is_err());
        assert!("a:1".parse::<FailureSchedule>().is_err());
        assert!("1:x".parse::<FailureSchedule>().is_err());
        assert!("1:-5".parse::<FailureSchedule>().is_err());
        assert!("1:inf".parse::<FailureSchedule>().is_err());
    }

    #[test]
    fn display_round_trips() {
        let s: FailureSchedule = "3:1.5,4:2".parse().unwrap();
        let t: FailureSchedule = s.to_string().parse().unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn offset_shifts_times() {
        let s = FailureSchedule::new().with(1, SimTime::from_secs(5));
        let o = s.offset_by(SimTime::from_secs(100));
        assert_eq!(o.entries()[0], (1, SimTime::from_secs(105)));
    }

    #[test]
    fn map_ranks_readdresses_entries() {
        let s = FailureSchedule::new()
            .with(0, SimTime::from_secs(5))
            .with(3, SimTime::from_secs(7));
        // Logical → replica-1 physical under a full degree-2 layout of 4
        // logical ranks (shadow of L at 4 + L).
        let m = s.map_ranks(|logical| 4 + logical);
        assert_eq!(
            m.entries(),
            &[(4, SimTime::from_secs(5)), (7, SimTime::from_secs(7))]
        );
        // Times are untouched.
        assert_eq!(
            m.offset_by(SimTime::ZERO).entries()[1].1,
            SimTime::from_secs(7)
        );
    }
}
