//! Soft-error (silent data corruption) injection into application
//! memory.
//!
//! The paper's conclusion reports that "the tracking of dynamic memory
//! allocation of simulated MPI processes … was the last piece needed to
//! develop a soft error injector" (§VI). In xsim-rs the application owns
//! its memory inside its coroutine, so the injector works
//! cooperatively: a [`SoftErrorPlan`] schedules bit flips at
//! `(rank, virtual time)`; the kernel queues them; the application
//! drains them at its convenience with [`poll_flips`] and applies them
//! to its buffers with [`apply_flip`] — modeling memory that silently
//! flipped while the application computed, exactly the fault class the
//! RedMPI study targets (§II-C).

use std::collections::HashMap;
use xsim_core::event::Action;
use xsim_core::{ctx, Kernel, Rank, SimTime};

/// One scheduled soft error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftFlip {
    /// Virtual time the flip occurs.
    pub at: SimTime,
    /// Selector used to pick the affected bit (reduced modulo the
    /// buffer size by [`apply_flip`]).
    pub bit_selector: u64,
}

/// A plan of soft errors to inject.
#[derive(Debug, Clone, Default)]
pub struct SoftErrorPlan {
    flips: Vec<(usize, SoftFlip)>,
}

impl SoftErrorPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a flip at `rank` at virtual time `at`.
    pub fn with_flip(mut self, rank: usize, at: SimTime, bit_selector: u64) -> Self {
        self.flips.push((rank, SoftFlip { at, bit_selector }));
        self
    }

    /// Number of scheduled flips.
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// Build a setup hook installing this plan on a kernel shard (pass
    /// to `SimBuilder::setup_hook`).
    pub fn install_hook(&self) -> impl Fn(&mut Kernel) + Send + Sync + 'static {
        let flips = self.flips.clone();
        move |k: &mut Kernel| {
            k.install_service(SoftErrorService::default());
            for (rank, flip) in &flips {
                let rank = Rank::new(*rank);
                if !k.owns(rank) {
                    continue;
                }
                let flip = *flip;
                k.schedule_at(
                    flip.at,
                    rank,
                    Action::call(move |k: &mut Kernel| {
                        if k.vp(rank).is_done() {
                            return;
                        }
                        xsim_obs::service::record(k, xsim_obs::ids::FAULT_SOFT_FLIPS, 1);
                        k.service_mut::<SoftErrorService>()
                            .pending
                            .entry(rank)
                            .or_default()
                            .push(flip);
                    }),
                );
            }
        }
    }
}

/// Kernel service buffering delivered-but-unconsumed flips per rank.
#[derive(Debug, Default)]
pub struct SoftErrorService {
    pending: HashMap<Rank, Vec<SoftFlip>>,
}

/// Drain the soft errors that have struck the calling rank since the
/// last poll. Applications call this between compute phases and apply
/// the flips to their own buffers.
pub fn poll_flips() -> Vec<SoftFlip> {
    ctx::with_kernel(
        |k, me| match k.service_mut::<SoftErrorService>().pending.get_mut(&me) {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        },
    )
}

/// Apply a flip to a buffer: flips bit `selector mod (len·8)`. Returns
/// the affected (byte, bit) position, or `None` for an empty buffer.
pub fn apply_flip(buf: &mut [u8], flip: SoftFlip) -> Option<(usize, u8)> {
    if buf.is_empty() {
        return None;
    }
    let bit = flip.bit_selector % (buf.len() as u64 * 8);
    let byte = (bit / 8) as usize;
    let off = (bit % 8) as u8;
    buf[byte] ^= 1 << off;
    Some((byte, off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates() {
        let p = SoftErrorPlan::new()
            .with_flip(0, SimTime::from_secs(1), 5)
            .with_flip(3, SimTime::from_secs(2), 9);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn apply_flip_flips_exactly_one_bit() {
        let mut buf = vec![0u8; 16];
        let (byte, bit) = apply_flip(
            &mut buf,
            SoftFlip {
                at: SimTime::ZERO,
                bit_selector: 77,
            },
        )
        .unwrap();
        assert_eq!(byte, 77 / 8);
        assert_eq!(bit, (77 % 8) as u8);
        assert_eq!(buf.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        // Applying again restores.
        apply_flip(
            &mut buf,
            SoftFlip {
                at: SimTime::ZERO,
                bit_selector: 77,
            },
        );
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn apply_flip_wraps_selector_and_handles_empty() {
        let mut buf = vec![0u8; 2];
        let (byte, _) = apply_flip(
            &mut buf,
            SoftFlip {
                at: SimTime::ZERO,
                bit_selector: 16 + 3,
            },
        )
        .unwrap();
        assert_eq!(byte, 0, "selector wraps modulo buffer bits");
        assert!(apply_flip(
            &mut [],
            SoftFlip {
                at: SimTime::ZERO,
                bit_selector: 1
            }
        )
        .is_none());
    }
}
