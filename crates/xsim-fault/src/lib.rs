//! # xsim-fault — fault injection
//!
//! The fault-injection surface of the toolkit (paper §III/IV plus the
//! Finject/RedMPI lineage of §II-C):
//!
//! * [`schedule`] — MPI process-failure schedules as rank/time pairs,
//!   parseable from strings ("the typical method for injecting failures",
//!   §IV-B).
//! * [`random`] — MTTF-driven random injection: "a random MPI rank …
//!   and a random time within 2·MTTF_s … applies to each application run
//!   separately" (§V-C), plus an exponential variant.
//! * [`bitflip`] — a simulated victim process with a structured memory
//!   image and a ptrace-style bit-flip injector; the campaign runner
//!   reproduces the statistics of the paper's Table I.
//! * [`reliability`] — component-based system reliability models (FIT
//!   rates composed into node/system failure processes, the announced
//!   future-work item (2) of §VI).
//! * [`netfault`] — component-addressed fault schedules generalizing
//!   rank/time pairs to links and switches (permanent, transient,
//!   degraded), with FIT-driven generation for the interconnect.
//! * [`soft`] — a soft-error (silent data corruption) injector for
//!   application-registered memory, the capability the paper's
//!   conclusion announces ("tracking of dynamic memory allocation …
//!   the last piece needed to develop a soft error injector", §VI).

pub mod bitflip;
pub mod netfault;
pub mod random;
pub mod reliability;
pub mod schedule;
pub mod soft;

pub use bitflip::{CampaignStats, FlipOutcome, Victim, VictimLayout};
pub use netfault::{Fault, FaultComponent, FaultKind, FaultSchedule, NetReliability};
pub use random::{FailureModel, RunDraw};
pub use reliability::{Component, NodeReliability, SystemReliability};
pub use schedule::FailureSchedule;
pub use soft::{SoftErrorPlan, SoftErrorService};
