//! Component-addressed fault schedules: processes, links and switches.
//!
//! [`FailureSchedule`](crate::FailureSchedule) covers the paper's
//! surface — MPI *process* failures as rank/time pairs (§IV-B).
//! [`FaultSchedule`] generalizes the same idea to the network fault
//! surface of the co-design tool: a fault is anchored at a
//! [`FaultComponent`] (rank, link or switch) and carries a
//! [`FaultKind`] (permanent, transient with a repair time, or degraded
//! bandwidth). Schedules parse from a textual format (env var
//! `XSIM_NET_FAULTS`), convert into the process-failure and link-fault
//! halves consumed by the builder, and can be generated deterministically
//! from [`NetReliability`] FIT rates — the network counterpart of
//! [`SystemReliability`](crate::SystemReliability).

use crate::schedule::{FailureSchedule, ParseError};
use std::fmt;
use std::str::FromStr;
use xsim_core::{DetRng, SimTime};
use xsim_net::{LinkFaultKind, NetFault, NodeId};

/// Direction names in [`xsim_net::Topology::torus_neighbors`] order.
const DIR_NAMES: [&str; 6] = ["+x", "-x", "+y", "-y", "+z", "-z"];

/// The network component a fault is anchored at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultComponent {
    /// An MPI process (the paper's §IV-B surface).
    Rank(usize),
    /// One link: the `dir`-th neighbor link of `node`
    /// (`dir` indexes [`xsim_net::Topology::torus_neighbors`]).
    Link { node: NodeId, dir: usize },
    /// A node's switch — all six of its links at once.
    Switch(NodeId),
}

/// How the component misbehaves once the fault activates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Dead until the end of the run.
    Permanent,
    /// Dead for `down_for`, then repaired.
    Transient { down_for: SimTime },
    /// Alive but passing traffic at `factor` × nominal bandwidth.
    Degraded { factor: f64 },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What breaks.
    pub component: FaultComponent,
    /// How it breaks.
    pub kind: FaultKind,
    /// When it breaks (earliest activation, as in [`FailureSchedule`]).
    pub at: SimTime,
}

/// A component-addressed fault schedule.
///
/// Textual format: comma-separated entries, fields colon-separated.
///
/// * `rank:R:SECS` — process failure (equivalent to a
///   [`FailureSchedule`] pair).
/// * `link:NODE:DIR:SECS[:perm|:down:SECS|:degraded:FACTOR]` — link
///   fault; `DIR` is one of `+x -x +y -y +z -z`.
/// * `switch:NODE:SECS[:perm|:down:SECS|:degraded:FACTOR]` — switch
///   fault (all six links of `NODE`).
///
/// The kind suffix defaults to `perm`.
///
/// ```
/// use xsim_fault::FaultSchedule;
///
/// let s: FaultSchedule = "rank:3:10,link:0:+x:5:down:30,switch:42:60:degraded:0.5"
///     .parse()
///     .unwrap();
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.rank_failures().len(), 1);
/// assert_eq!(s.net_faults().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one fault.
    pub fn push(&mut self, component: FaultComponent, kind: FaultKind, at: SimTime) {
        self.faults.push(Fault {
            component,
            kind,
            at,
        });
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, component: FaultComponent, kind: FaultKind, at: SimTime) -> Self {
        self.push(component, kind, at);
        self
    }

    /// The scheduled faults.
    pub fn entries(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Read a schedule from the `XSIM_NET_FAULTS` environment variable,
    /// if set (same convention as `XSIM_FAILURES`).
    pub fn from_env() -> Result<Option<Self>, ParseError> {
        match std::env::var("XSIM_NET_FAULTS") {
            Ok(s) if !s.trim().is_empty() => s.parse().map(Some),
            _ => Ok(None),
        }
    }

    /// The process-failure half: every `rank:` entry as a
    /// [`FailureSchedule`] for `SimBuilder::inject_failures`. Transient
    /// and degraded kinds on ranks degenerate to plain failures (a
    /// simulated MPI process does not come back, §IV-B).
    pub fn rank_failures(&self) -> FailureSchedule {
        let mut out = FailureSchedule::new();
        for f in &self.faults {
            if let FaultComponent::Rank(r) = f.component {
                out.push(r, f.at);
            }
        }
        out
    }

    /// The network half: every link/switch entry as an
    /// [`xsim_net::NetFault`] for `SimBuilder::net_faults`.
    pub fn net_faults(&self) -> Vec<NetFault> {
        self.faults
            .iter()
            .filter_map(|f| {
                let (node, dir) = match f.component {
                    FaultComponent::Rank(_) => return None,
                    FaultComponent::Link { node, dir } => (node, Some(dir)),
                    FaultComponent::Switch(node) => (node, None),
                };
                let (kind, until) = match f.kind {
                    FaultKind::Permanent => (LinkFaultKind::Down, None),
                    FaultKind::Transient { down_for } => {
                        (LinkFaultKind::Down, Some(f.at + down_for))
                    }
                    FaultKind::Degraded { factor } => (LinkFaultKind::Degraded(factor), None),
                };
                Some(NetFault {
                    node,
                    dir,
                    kind,
                    from: f.at,
                    until,
                })
            })
            .collect()
    }
}

fn parse_dir(s: &str) -> Result<usize, ParseError> {
    DIR_NAMES
        .iter()
        .position(|d| *d == s)
        .ok_or_else(|| ParseError(format!("bad direction '{s}' (want +x -x +y -y +z -z)")))
}

fn parse_secs(s: &str, item: &str) -> Result<SimTime, ParseError> {
    let secs: f64 = s
        .trim()
        .parse()
        .map_err(|_| ParseError(format!("bad time in '{item}'")))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(ParseError(format!(
            "negative or non-finite time in '{item}'"
        )));
    }
    Ok(SimTime::from_secs_f64(secs))
}

fn parse_kind(tail: &[&str], item: &str) -> Result<FaultKind, ParseError> {
    match tail {
        [] | ["perm"] => Ok(FaultKind::Permanent),
        ["down", secs] => Ok(FaultKind::Transient {
            down_for: parse_secs(secs, item)?,
        }),
        ["degraded", factor] => {
            let f: f64 = factor
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("bad factor in '{item}'")))?;
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(ParseError(format!(
                    "degraded factor must be in (0, 1] in '{item}'"
                )));
            }
            Ok(FaultKind::Degraded { factor: f })
        }
        _ => Err(ParseError(format!("bad fault kind in '{item}'"))),
    }
}

impl FromStr for FaultSchedule {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut out = FaultSchedule::new();
        for item in s.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let parts: Vec<&str> = item.split(':').map(str::trim).collect();
            match parts.as_slice() {
                ["rank", r, t] => {
                    let rank: usize = r
                        .parse()
                        .map_err(|_| ParseError(format!("bad rank in '{item}'")))?;
                    out.push(
                        FaultComponent::Rank(rank),
                        FaultKind::Permanent,
                        parse_secs(t, item)?,
                    );
                }
                ["link", node, dir, t, tail @ ..] => {
                    let node: NodeId = node
                        .parse()
                        .map_err(|_| ParseError(format!("bad node in '{item}'")))?;
                    out.push(
                        FaultComponent::Link {
                            node,
                            dir: parse_dir(dir)?,
                        },
                        parse_kind(tail, item)?,
                        parse_secs(t, item)?,
                    );
                }
                ["switch", node, t, tail @ ..] => {
                    let node: NodeId = node
                        .parse()
                        .map_err(|_| ParseError(format!("bad node in '{item}'")))?;
                    out.push(
                        FaultComponent::Switch(node),
                        parse_kind(tail, item)?,
                        parse_secs(t, item)?,
                    );
                }
                _ => {
                    return Err(ParseError(format!(
                        "unrecognized fault entry '{item}' (want rank:/link:/switch:)"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Permanent => write!(f, "perm"),
            FaultKind::Transient { down_for } => write!(f, "down:{}", down_for.as_secs_f64()),
            FaultKind::Degraded { factor } => write!(f, "degraded:{factor}"),
        }
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fault in &self.faults {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            let t = fault.at.as_secs_f64();
            match fault.component {
                FaultComponent::Rank(r) => write!(f, "rank:{r}:{t}")?,
                FaultComponent::Link { node, dir } => {
                    write!(f, "link:{node}:{}:{t}:{}", DIR_NAMES[dir], fault.kind)?
                }
                FaultComponent::Switch(node) => write!(f, "switch:{node}:{t}:{}", fault.kind)?,
            }
        }
        Ok(())
    }
}

/// FIT-rate reliability model for the interconnect: the network
/// counterpart of [`NodeReliability`](crate::NodeReliability),
/// generating link/switch fault schedules instead of rank failures.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReliability {
    /// FIT rate of one link (cable + transceiver pair).
    pub link: crate::Component,
    /// FIT rate of one switch.
    pub switch: crate::Component,
    /// Fraction of faults that are transient (repaired after
    /// [`transient_down`](Self::transient_down)) rather than permanent.
    pub transient_fraction: f64,
    /// Fraction of faults that only degrade bandwidth (factor drawn
    /// uniformly from `[0.25, 0.75)`) instead of killing the component.
    pub degraded_fraction: f64,
    /// Repair time of a transient fault.
    pub transient_down: SimTime,
}

impl NetReliability {
    /// A representative fabric: optical links fail more often than the
    /// (redundantly powered) switch ASICs; most faults are transient
    /// (flapping links), a minority permanently degrade or die.
    pub fn typical_fabric() -> Self {
        NetReliability {
            link: crate::Component::new("link", 150.0),
            switch: crate::Component::new("switch", 500.0),
            transient_fraction: 0.6,
            degraded_fraction: 0.2,
            transient_down: SimTime::from_secs(30),
        }
    }

    fn draw_kind(&self, rng: &mut DetRng) -> FaultKind {
        let u = rng.gen_f64();
        if u < self.transient_fraction {
            FaultKind::Transient {
                down_for: self.transient_down,
            }
        } else if u < self.transient_fraction + self.degraded_fraction {
            FaultKind::Degraded {
                factor: 0.25 + 0.5 * rng.gen_f64(),
            }
        } else {
            FaultKind::Permanent
        }
    }

    /// Generate a concrete link/switch fault schedule over
    /// `[0, horizon)` for an `n_nodes` machine: every switch and every
    /// positively-directed link (`+x`, `+y`, `+z` — each physical link
    /// is owned by exactly one endpoint) draws independent exponential
    /// inter-failure times. Deterministic in `seed`, mirroring
    /// [`SystemReliability::generate_schedule`](crate::SystemReliability::generate_schedule).
    pub fn generate_schedule(&self, n_nodes: usize, horizon: SimTime, seed: u64) -> FaultSchedule {
        let mut out = FaultSchedule::new();
        let mut process = |component: FaultComponent, rate_per_hour: f64, tag: u64| {
            if rate_per_hour <= 0.0 {
                return;
            }
            let mean_secs = 3600.0 / rate_per_hour;
            let mut rng = DetRng::stream(seed, 0x11F0_F4B1 ^ tag);
            let mut t = 0.0f64;
            loop {
                t += rng.gen_exponential(mean_secs);
                let at = SimTime::from_secs_f64(t);
                if at >= horizon {
                    break;
                }
                out.faults.push(Fault {
                    component,
                    kind: self.draw_kind(&mut rng),
                    at,
                });
            }
        };
        for node in 0..n_nodes {
            let base = (node as u64).rotate_left(17);
            process(
                FaultComponent::Switch(node),
                self.switch.rate_per_hour(),
                base,
            );
            for dir in [0usize, 2, 4] {
                process(
                    FaultComponent::Link { node, dir },
                    self.link.rate_per_hour(),
                    base ^ (0x51 + dir as u64).rotate_left(31),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_component_forms() {
        let s: FaultSchedule =
            "rank:3:10, link:0:+x:5:down:30, switch:42:60:degraded:0.5, link:7:-z:1"
                .parse()
                .unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.entries()[0],
            Fault {
                component: FaultComponent::Rank(3),
                kind: FaultKind::Permanent,
                at: SimTime::from_secs(10),
            }
        );
        assert_eq!(
            s.entries()[1],
            Fault {
                component: FaultComponent::Link { node: 0, dir: 0 },
                kind: FaultKind::Transient {
                    down_for: SimTime::from_secs(30)
                },
                at: SimTime::from_secs(5),
            }
        );
        assert_eq!(
            s.entries()[2],
            Fault {
                component: FaultComponent::Switch(42),
                kind: FaultKind::Degraded { factor: 0.5 },
                at: SimTime::from_secs(60),
            }
        );
        assert_eq!(
            s.entries()[3].component,
            FaultComponent::Link { node: 7, dir: 5 }
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "rank:3",
            "link:0:q:5",
            "link:0:+x:5:melted",
            "link:0:+x:5:degraded:1.5",
            "link:0:+x:5:degraded:0",
            "switch:x:5",
            "router:0:5",
            "rank:1:-2",
        ] {
            assert!(bad.parse::<FaultSchedule>().is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn display_round_trips() {
        let s: FaultSchedule =
            "rank:3:10,link:0:+x:5:down:30,switch:42:60:degraded:0.5,link:1:+y:2:perm"
                .parse()
                .unwrap();
        let t: FaultSchedule = s.to_string().parse().unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn splits_into_rank_and_net_halves() {
        let s: FaultSchedule = "rank:3:10,link:0:+x:5:down:30,switch:42:60"
            .parse()
            .unwrap();
        let ranks = s.rank_failures();
        assert_eq!(ranks.entries(), &[(3, SimTime::from_secs(10))]);
        let nets = s.net_faults();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0].node, 0);
        assert_eq!(nets[0].dir, Some(0));
        assert_eq!(nets[0].kind, LinkFaultKind::Down);
        assert_eq!(nets[0].from, SimTime::from_secs(5));
        assert_eq!(nets[0].until, Some(SimTime::from_secs(35)));
        assert_eq!(nets[1].dir, None, "switch fault covers all links");
        assert_eq!(nets[1].until, None, "permanent");
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let rel = NetReliability::typical_fabric();
        // 256 switches at 500 FIT + 768 links at 150 FIT over 100k hours
        // ≈ 24 expected faults.
        let horizon = SimTime::from_secs_f64(100_000.0 * 3600.0);
        let a = rel.generate_schedule(256, horizon, 7);
        let b = rel.generate_schedule(256, horizon, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty(), "long horizon should see faults");
        for f in a.entries() {
            assert!(f.at < horizon);
            assert!(matches!(
                f.component,
                FaultComponent::Switch(_) | FaultComponent::Link { .. }
            ));
            if let FaultKind::Degraded { factor } = f.kind {
                assert!((0.25..0.75).contains(&factor));
            }
        }
        let c = rel.generate_schedule(256, horizon, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zero_rates_generate_nothing() {
        let mut rel = NetReliability::typical_fabric();
        rel.link = crate::Component::new("link", 0.0);
        rel.switch = crate::Component::new("switch", 0.0);
        assert!(rel
            .generate_schedule(64, SimTime::from_secs(1_000_000), 1)
            .is_empty());
    }
}
