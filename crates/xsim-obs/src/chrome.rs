//! Streaming Chrome trace-event JSON emitter.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto (ui.perfetto.dev → "Open trace file"). Events are written as
//! they are submitted — a million-event trace never materializes in
//! memory. Virtual nanoseconds map to the format's microsecond `ts`
//! field with fractional precision, so nanosecond resolution survives.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json;
use crate::service::ObsSpan;
use std::io::{self, Write};

/// Streaming writer producing one `{"traceEvents":[...]}` document.
pub struct ChromeTraceWriter<W: Write> {
    w: W,
    first: bool,
    buf: String,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Start a trace document on `w`.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(ChromeTraceWriter {
            w,
            first: true,
            buf: String::with_capacity(256),
        })
    }

    fn sep(&mut self) -> io::Result<()> {
        if self.first {
            self.first = false;
            Ok(())
        } else {
            self.w.write_all(b",\n")
        }
    }

    fn push_escaped(&mut self, s: &str) {
        // json::escape appends to a String; reuse the writer's buffer.
        json::escape(s, &mut self.buf);
    }

    /// Emit one complete ("X") duration event. Times are virtual
    /// nanoseconds; `pid` is the simulated rank, `tid` distinguishes
    /// lanes within a rank (0 = MPI phases, 1 = subsystem spans).
    /// `args` become the event's `args` object (u64 values).
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event field list
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, u64)],
    ) -> io::Result<()> {
        self.sep()?;
        self.buf.clear();
        self.buf.push_str("{\"ph\":\"X\",\"name\":\"");
        self.push_escaped(name);
        self.buf.push_str("\",\"cat\":\"");
        self.push_escaped(cat);
        use std::fmt::Write as _;
        let _ = write!(
            self.buf,
            "\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3}",
            start_ns as f64 / 1_000.0,
            end_ns.saturating_sub(start_ns) as f64 / 1_000.0,
        );
        if !args.is_empty() {
            self.buf.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push('"');
                json::escape(k, &mut self.buf);
                let _ = write!(self.buf, "\":{v}");
            }
            self.buf.push('}');
        }
        self.buf.push('}');
        self.w.write_all(self.buf.as_bytes())
    }

    /// Emit a subsystem span on the rank's subsystem lane (`tid` 1).
    pub fn span(&mut self, s: &ObsSpan) -> io::Result<()> {
        let args: &[(&str, u64)] = &[("bytes", s.bytes)];
        self.complete(
            s.name,
            s.cat,
            s.rank.0,
            1,
            s.start.as_nanos(),
            s.end.as_nanos(),
            if s.bytes != 0 { args } else { &[] },
        )
    }

    /// Emit a `process_name` metadata event labeling `pid` in the viewer.
    pub fn process_name(&mut self, pid: u32, name: &str) -> io::Result<()> {
        self.sep()?;
        self.buf.clear();
        self.buf
            .push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        use std::fmt::Write as _;
        let _ = write!(self.buf, "{pid},\"args\":{{\"name\":\"");
        self.push_escaped(name);
        self.buf.push_str("\"}}");
        self.w.write_all(self.buf.as_bytes())
    }

    /// Close the document and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(b"]}")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use xsim_core::{Rank, SimTime};

    #[test]
    fn emits_valid_perfetto_json() {
        let mut w = ChromeTraceWriter::new(Vec::new()).unwrap();
        w.process_name(0, "rank 0").unwrap();
        w.complete(
            "send",
            "mpi",
            0,
            0,
            1_500,
            4_500,
            &[("bytes", 128), ("peer", 1)],
        )
        .unwrap();
        w.span(&ObsSpan {
            name: "fs.write",
            cat: "fs",
            rank: Rank(2),
            start: SimTime(10_000),
            end: SimTime(30_000),
            bytes: 4096,
        })
        .unwrap();
        let bytes = w.finish().unwrap();
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).expect("valid JSON");
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 3);
        let send = &evs[1];
        assert_eq!(send.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(send.get("pid").unwrap().as_u64(), Some(0));
        assert_eq!(send.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(send.get("dur").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            send.get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(128)
        );
        let fs = &evs[2];
        assert_eq!(fs.get("cat").unwrap().as_str(), Some("fs"));
        assert_eq!(fs.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(fs.get("ts").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn empty_trace_is_valid() {
        let w = ChromeTraceWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn escapes_names() {
        let mut w = ChromeTraceWriter::new(Vec::new()).unwrap();
        w.complete("a\"b\\c", "t", 0, 0, 0, 1, &[]).unwrap();
        let bytes = w.finish().unwrap();
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("a\"b\\c"));
    }
}
