//! Minimal JSON support: string escaping for the emitters and a small
//! recursive-descent parser so tests (and downstream tools) can parse
//! the emitted artifacts back without external dependencies — the
//! workspace deliberately carries no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our emitters.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::from("\"");
        escape("a\"b\\c\nd\te\u{1}", &mut out);
        out.push('"');
        assert_eq!(
            Json::parse(&out).unwrap().as_str(),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn u64_conversion_is_exact_only() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
