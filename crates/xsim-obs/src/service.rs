//! The per-shard observability service and its end-of-run report.
//!
//! Mirrors the `TraceService` pattern of the MPI layer: each kernel
//! shard carries one [`ObsService`] holding a [`MetricSet`] plus a
//! buffer of subsystem [`ObsSpan`]s; at engine shutdown every shard
//! flushes into a shared [`ObsSink`], which the builder drains into an
//! [`ObsReport`] after the run.

use crate::metrics::MetricSet;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use xsim_core::{Kernel, Rank, SimReport, SimTime};

/// One timed subsystem interval (a file-system transfer, a checkpoint
/// commit…), destined for the Chrome trace exporter alongside the MPI
/// phase trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsSpan {
    /// Event name shown in the viewer (e.g. `"fs.write"`).
    pub name: &'static str,
    /// Trace category (e.g. `"fs"`, `"ckpt"`).
    pub cat: &'static str,
    /// Rank the interval belongs to.
    pub rank: Rank,
    /// Interval start (virtual time).
    pub start: SimTime,
    /// Interval end (virtual time).
    pub end: SimTime,
    /// Bytes moved, if meaningful (0 otherwise).
    pub bytes: u64,
}

/// Shared sink the per-shard services flush into.
#[derive(Default)]
pub struct ObsSink {
    /// Merged metric storage.
    pub set: MetricSet,
    /// Concatenated subsystem spans (unsorted until assembly).
    pub spans: Vec<ObsSpan>,
}

/// Per-shard observability state, installed as a kernel service by
/// `SimBuilder::metrics(true)`.
pub struct ObsService {
    /// This shard's metric storage. Public so instrumentation sites that
    /// already hold `&mut ObsService` can record without indirection.
    pub set: MetricSet,
    /// This shard's span buffer.
    pub spans: Vec<ObsSpan>,
    sink: Arc<Mutex<ObsSink>>,
}

impl ObsService {
    /// New per-shard service flushing into `sink`.
    pub fn new(sink: Arc<Mutex<ObsSink>>) -> Self {
        ObsService {
            set: MetricSet::new(),
            spans: Vec::new(),
            sink,
        }
    }

    /// Record `v` against metric `id` (counter add / gauge max /
    /// histogram observe).
    #[inline]
    pub fn record(&mut self, id: usize, v: u64) {
        self.set.add(id, v);
    }

    /// Buffer a subsystem span for the trace exporters.
    #[inline]
    pub fn span(&mut self, span: ObsSpan) {
        self.spans.push(span);
    }

    /// Flush this shard's metrics and spans into the shared sink. Called
    /// explicitly at engine shutdown; idempotent (flushing drains the
    /// local state), with `Drop` as a backstop.
    pub fn flush(&mut self) {
        if self.spans.is_empty() && !self.set.any_activity() {
            return;
        }
        let mut sink = self.sink.lock();
        sink.set.merge_from(&mut self.set);
        sink.spans.append(&mut self.spans);
    }
}

impl Drop for ObsService {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Record against a kernel's [`ObsService`], a no-op when metrics are
/// disabled. For use inside kernel closures that already hold
/// `&mut Kernel` — when disabled this is a single failed `TypeId`
/// lookup, no allocation.
#[inline]
pub fn record(k: &mut Kernel, id: usize, v: u64) {
    if let Some(obs) = k.try_service_mut::<ObsService>() {
        obs.set.add(id, v);
    }
}

/// Buffer a span on a kernel's [`ObsService`]; no-op when disabled.
#[inline]
pub fn span(k: &mut Kernel, s: ObsSpan) {
    if let Some(obs) = k.try_service_mut::<ObsService>() {
        obs.spans.push(s);
    }
}

/// Whether metrics are enabled on this shard. Lets async instrumentation
/// sites skip span bookkeeping (clock reads, extra `with_kernel` trips)
/// entirely when disabled.
#[inline]
pub fn enabled(k: &Kernel) -> bool {
    k.try_service::<ObsService>().is_some()
}

/// The merged observability data of one run.
#[derive(Default)]
pub struct ObsReport {
    /// Merged metrics across shards.
    pub set: MetricSet,
    /// All subsystem spans, sorted by `(start, rank, end, name)` for
    /// deterministic output.
    pub spans: Vec<ObsSpan>,
}

impl ObsReport {
    /// Drain the shared sink into a report (deterministic span order).
    pub fn assemble(sink: &Mutex<ObsSink>) -> Self {
        let inner = std::mem::take(&mut *sink.lock());
        let mut spans = inner.spans;
        spans.sort_by_key(|s| (s.start, s.rank, s.end, s.name));
        ObsReport {
            set: inner.set,
            spans,
        }
    }

    /// Render the machine-readable metrics snapshot. Pass the engine
    /// report to include the engine section (events, context switches,
    /// per-shard stats, load imbalance, parallel-engine profile).
    ///
    /// Without an engine report (`to_json(None)`) the snapshot is the
    /// *deterministic surface*: volatile (execution-shape) metrics are
    /// omitted, so the output is byte-identical across engine kinds and
    /// worker counts for the same seed and configuration.
    pub fn to_json(&self, sim: Option<&SimReport>) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"xsim-metrics-v1\"");
        if let Some(r) = sim {
            let _ = write!(
                out,
                ",\"engine\":{{\"events_processed\":{},\"context_switches\":{},\"wall_us\":{},\
                 \"load_imbalance\":{:.4},\"windows\":{},\"steals\":{},\"barrier_wait_ns\":{},\
                 \"batched_events\":{},\"batch_max_events\":{},\"shards\":[",
                r.events_processed,
                r.context_switches,
                r.wall.as_micros(),
                r.load_imbalance(),
                r.profile.windows,
                r.profile.steals,
                r.profile.barrier_wait_ns,
                r.profile.batched_events,
                r.profile.batch_max_events
            );
            for (i, s) in r.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"shard\":{},\"events_processed\":{},\"vp_resumes\":{},\
                     \"queue_depth_hwm\":{}}}",
                    s.shard_id, s.events_processed, s.context_switches, s.queue_depth_hwm
                );
            }
            out.push_str("]}");
        }
        out.push_str(",\"metrics\":");
        self.set.write_json(&mut out, sim.is_some());
        let _ = write!(out, ",\"span_count\":{}}}", self.spans.len());
        out
    }
}

impl std::fmt::Debug for ObsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsReport")
            .field("spans", &self.spans.len())
            .field("any_activity", &self.set.any_activity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ids;

    #[test]
    fn flush_merges_and_drains() {
        let sink = Arc::new(Mutex::new(ObsSink::default()));
        let mut a = ObsService::new(sink.clone());
        let mut b = ObsService::new(sink.clone());
        a.record(ids::FS_WRITES, 2);
        b.record(ids::FS_WRITES, 3);
        b.span(ObsSpan {
            name: "fs.write",
            cat: "fs",
            rank: Rank(1),
            start: SimTime(5),
            end: SimTime(9),
            bytes: 64,
        });
        a.flush();
        a.flush(); // idempotent
        drop(a);
        drop(b); // Drop backstop flushes b
        let rep = ObsReport::assemble(&sink);
        assert_eq!(rep.set.value(ids::FS_WRITES), 5);
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].name, "fs.write");
    }

    #[test]
    fn spans_sorted_deterministically() {
        let sink = Arc::new(Mutex::new(ObsSink::default()));
        let mut s = ObsService::new(sink.clone());
        let sp = |rank, start| ObsSpan {
            name: "x",
            cat: "t",
            rank: Rank(rank),
            start: SimTime(start),
            end: SimTime(start + 1),
            bytes: 0,
        };
        s.span(sp(2, 10));
        s.span(sp(0, 10));
        s.span(sp(1, 3));
        s.flush();
        let rep = ObsReport::assemble(&sink);
        let order: Vec<_> = rep.spans.iter().map(|s| (s.start.0, s.rank.0)).collect();
        assert_eq!(order, vec![(3, 1), (10, 0), (10, 2)]);
    }

    #[test]
    fn snapshot_json_parses_without_engine() {
        let sink = Arc::new(Mutex::new(ObsSink::default()));
        let mut s = ObsService::new(sink.clone());
        s.record(ids::CKPT_WRITES, 1);
        s.flush();
        let rep = ObsReport::assemble(&sink);
        let doc = crate::json::Json::parse(&rep.to_json(None)).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("xsim-metrics-v1"));
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("ckpt.writes"))
                .and_then(|e| e.get("value"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!(doc.get("engine").is_none());
    }
}
