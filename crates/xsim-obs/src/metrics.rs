//! The metrics registry: a fixed schema of counters, gauges and
//! fixed-bucket histograms with `const`-index handles.
//!
//! The schema is deliberately static. Dynamic registration would force
//! either hashing or locking onto the record path; a static table keeps
//! `MetricSet::add` an array index and an integer add, which is what
//! lets the simulator keep its instrumentation on even at million-VP
//! scale.

use std::fmt::Write as _;

/// What a metric's value is measured in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Bytes.
    Bytes,
    /// Virtual nanoseconds.
    Nanos,
}

impl Unit {
    /// Snapshot-schema name.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Nanos => "nanos",
        }
    }
}

/// The shape of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter; `add` accumulates, shards merge by summing.
    Counter,
    /// High-water-mark gauge; `add` and merges keep the maximum.
    Gauge,
    /// Fixed-bucket histogram; `add` observes one sample.
    Histogram,
}

/// One entry of the metric schema.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Dotted snapshot name, `<subsystem>.<metric>`.
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Value unit.
    pub unit: Unit,
    /// Upper bucket bounds (inclusive) for histograms; one overflow
    /// bucket is added implicitly. Empty for counters/gauges.
    pub buckets: &'static [u64],
    /// Execution-shape metric: its value depends on worker count,
    /// scheduling or wall-clock timing (engine windows, steals, barrier
    /// waits…) rather than on the simulation alone. Volatile metrics
    /// are excluded from deterministic snapshots (`to_json(None)`) and
    /// from cross-engine equality assertions.
    pub volatile: bool,
}

impl MetricDef {
    /// A monotonic counter.
    pub const fn counter(name: &'static str, unit: Unit) -> Self {
        MetricDef {
            name,
            kind: MetricKind::Counter,
            unit,
            buckets: &[],
            volatile: false,
        }
    }

    /// A high-water-mark gauge.
    pub const fn gauge(name: &'static str, unit: Unit) -> Self {
        MetricDef {
            name,
            kind: MetricKind::Gauge,
            unit,
            buckets: &[],
            volatile: false,
        }
    }

    /// A fixed-bucket histogram.
    pub const fn histogram(name: &'static str, unit: Unit, buckets: &'static [u64]) -> Self {
        MetricDef {
            name,
            kind: MetricKind::Histogram,
            unit,
            buckets,
            volatile: false,
        }
    }

    /// Mark the metric execution-shape-dependent (see the field docs).
    pub const fn volatile(self) -> Self {
        MetricDef {
            name: self.name,
            kind: self.kind,
            unit: self.unit,
            buckets: self.buckets,
            volatile: true,
        }
    }
}

/// Size buckets (bytes): powers of four from 64 B to 16 MiB.
pub const SIZE_BUCKETS: &[u64] = &[
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
];

/// Restore-chain-length buckets: powers of two from 1 to 64 replayed
/// files (a chain longer than 64 means a misconfigured full cadence).
pub const CHAIN_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Latency buckets (virtual ns): decades from 1 µs to 100 s.
pub const LATENCY_BUCKETS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// `const` handles into [`SPEC`]. Instrumentation sites use these so the
/// record path is an array index.
pub mod ids {
    /// Eager-protocol messages injected.
    pub const NET_MSGS_EAGER: usize = 0;
    /// Rendezvous-protocol messages injected.
    pub const NET_MSGS_RENDEZVOUS: usize = 1;
    /// Payload bytes over on-chip links.
    pub const NET_BYTES_ONCHIP: usize = 2;
    /// Payload bytes over on-node links.
    pub const NET_BYTES_ONNODE: usize = 3;
    /// Payload bytes over the system interconnect.
    pub const NET_BYTES_SYSTEM: usize = 4;
    /// Requests completed with `MPI_ERR_PROC_FAILED` by the
    /// timeout/monitor failure detector.
    pub const NET_TIMEOUT_DETECTIONS: usize = 5;
    /// Message payload size distribution.
    pub const NET_MSG_BYTES: usize = 6;
    /// High-water mark of any rank's unexpected-message queue.
    pub const MPI_UNEXPECTED_HWM: usize = 7;
    /// File system write operations.
    pub const FS_WRITES: usize = 8;
    /// File system read operations.
    pub const FS_READS: usize = 9;
    /// File system delete operations.
    pub const FS_DELETES: usize = 10;
    /// Injected I/O faults that fired.
    pub const FS_FAULTS_INJECTED: usize = 11;
    /// Write size distribution.
    pub const FS_WRITE_BYTES: usize = 12;
    /// Read size distribution.
    pub const FS_READ_BYTES: usize = 13;
    /// Write latency distribution (virtual ns).
    pub const FS_WRITE_NS: usize = 14;
    /// Read latency distribution (virtual ns).
    pub const FS_READ_NS: usize = 15;
    /// Checkpoints written.
    pub const CKPT_WRITES: usize = 16;
    /// Checkpoint bytes written.
    pub const CKPT_BYTES_WRITTEN: usize = 17;
    /// Checkpoint commit latency distribution (virtual ns).
    pub const CKPT_COMMIT_NS: usize = 18;
    /// Checkpoints successfully loaded on restart.
    pub const CKPT_LOADS: usize = 19;
    /// Corrupted/partial checkpoints discarded during load.
    pub const CKPT_CORRUPT_DISCARDED: usize = 20;
    /// Old checkpoint generations deleted (post-barrier cleanup).
    pub const CKPT_DELETES: usize = 21;
    /// Process-failure notifications broadcast (fault activations seen
    /// by the MPI layer).
    pub const FAULT_ACTIVATIONS: usize = 22;
    /// Soft-error bit flips delivered to applications.
    pub const FAULT_SOFT_FLIPS: usize = 23;
    /// Messages dropped by lossy links (every failed transmission
    /// attempt counts once).
    pub const NET_DROPS: usize = 24;
    /// Retransmissions performed by the resilient transport.
    pub const NET_RETRANSMITS: usize = 25;
    /// Virtual time spent in retransmission backoff.
    pub const NET_BACKOFF_NS: usize = 26;
    /// Extra hops taken by fault-aware rerouting around dead links.
    pub const NET_REROUTED_HOPS: usize = 27;
    /// Extra transfer time attributable to degraded-link bandwidth.
    pub const NET_DEGRADED_NS: usize = 28;
    /// Messages discarded because a lossy link corrupted the payload.
    pub const NET_CORRUPT_DROPS: usize = 29;
    /// Synchronization windows the parallel engine executed (volatile:
    /// depends on worker/shard count and adaptive lookahead).
    pub const ENGINE_WINDOWS: usize = 30;
    /// Shard window-tasks executed by a non-home worker (volatile:
    /// work-stealing is scheduling-dependent).
    pub const ENGINE_STEALS: usize = 31;
    /// Wall-clock nanoseconds spent waiting at window barriers
    /// (volatile: wall-clock).
    pub const ENGINE_BARRIER_WAIT_NS: usize = 32;
    /// Cross-shard events delivered through the batched exchange
    /// (volatile: depends on the shard partition).
    pub const ENGINE_BATCHED_EVENTS: usize = 33;
    /// Largest single (src,dst) exchange batch (volatile).
    pub const ENGINE_BATCH_MAX: usize = 34;
    /// Fault-aware route queries answered by the epoch-keyed cache
    /// (volatile: parallel shards race to fill entries, so the counts —
    /// never the routes — vary with scheduling).
    pub const NET_ROUTE_CACHE_HITS: usize = 35;
    /// Fault-aware route queries that ran the BFS and filled the cache
    /// (volatile, see `NET_ROUTE_CACHE_HITS`).
    pub const NET_ROUTE_CACHE_MISSES: usize = 36;
    /// Route-cache entries discarded at a shard capacity bound
    /// (volatile, see `NET_ROUTE_CACHE_HITS`).
    pub const NET_ROUTE_CACHE_EVICTIONS: usize = 37;
    /// Cheap reference-count payload clones on the message path
    /// (collective fan-outs sharing one buffer instead of copying it).
    pub const MPI_PAYLOAD_CLONES: usize = 38;
    /// Bytes actually copied host-side on the message path (collective
    /// packing and typed reduce decode — the copies that remain).
    pub const MPI_PAYLOAD_COPY_BYTES: usize = 39;
    /// Heartbeat messages modeled by the replication layer's failure
    /// detector (team-internal, accounted at finalize from virtual time).
    pub const REP_HEARTBEATS: usize = 40;
    /// Replica deaths detected by the heartbeat detector (one per
    /// observer × dead replica pair).
    pub const REP_DETECTIONS: usize = 41;
    /// Leader failovers: a rank routed a logical channel around a dead
    /// replica that had been its designated copy source.
    pub const REP_FAILOVERS: usize = 42;
    /// Failover latency distribution (virtual ns between a replica's
    /// time of failure and the moment a peer routed around it).
    pub const REP_FAILOVER_NS: usize = 43;
    /// Logical messages sent through the replication layer.
    pub const REP_MSGS: usize = 44;
    /// Physical copies injected for those logical messages (the
    /// replication protocol's message amplification).
    pub const REP_COPIES: usize = 45;
    /// Windows where the parallel engine skipped the ingest phase (and
    /// its barrier) because nothing was exchanged (volatile: depends on
    /// worker/shard count).
    pub const ENGINE_INGEST_SKIPS: usize = 46;
    /// Largest number of stolen shard-tasks any single window saw
    /// (volatile: work-stealing is scheduling-dependent).
    pub const ENGINE_STEAL_HWM: usize = 47;
    /// Longest single barrier wait of the run, wall-clock nanoseconds
    /// (volatile: wall-clock).
    pub const ENGINE_BARRIER_HWM_NS: usize = 48;
    /// Event-storage reuse ratio of the calendar queue's bucket arena,
    /// in permille (pushes landing in already-allocated capacity per
    /// 1000 pushes; 1000 = zero steady-state allocation). Volatile:
    /// occupancy history depends on the shard partition and windowing.
    pub const ENGINE_POOL_REUSE_RATIO: usize = 49;
    /// High-water mark of a single calendar-queue bucket (volatile:
    /// bucket occupancy depends on the shard partition).
    pub const ENGINE_QUEUE_BUCKET_HWM: usize = 50;
    /// Stripe requests served by the simulated PFS I/O nodes (one per
    /// involved node per striped transfer).
    pub const FS_STRIPE_REQS: usize = 51;
    /// Bytes landed on PFS I/O nodes by striped transfers.
    pub const FS_STRIPE_BYTES: usize = 52;
    /// Per-request queueing delay at a PFS I/O node before service
    /// starts (virtual ns) — the visible face of I/O contention.
    pub const FS_STRIPE_QUEUE_NS: usize = 53;
    /// Group gathers performed by aggregated-checkpoint aggregators
    /// (one per container file written).
    pub const CKPT_AGG_GATHERS: usize = 54;
    /// Bytes checkpoint group members forwarded to their aggregator.
    pub const CKPT_AGG_FORWARD_BYTES: usize = 55;
    /// Partner copies stored in the node-local tier by buddy
    /// checkpointing.
    pub const CKPT_BUDDY_COPIES: usize = 56;
    /// Buddy checkpoints spilled to the PFS (partnerless rank).
    pub const CKPT_BUDDY_SPILLS: usize = 57;
    /// Dirty blocks carried by incremental (diff) checkpoints.
    pub const CKPT_DIFF_BLOCKS: usize = 58;
    /// Incremental (diff) checkpoint generations written.
    pub const CKPT_DIFF_WRITES: usize = 59;
    /// Restore-chain length distribution: files replayed per restored
    /// rank state (1 = plain full checkpoint, k+1 = full + k diffs).
    pub const CKPT_RESTORE_CHAIN: usize = 60;
}

/// The metric schema, indexed by [`ids`].
pub const SPEC: &[MetricDef] = &[
    MetricDef::counter("net.msgs_eager", Unit::Count),
    MetricDef::counter("net.msgs_rendezvous", Unit::Count),
    MetricDef::counter("net.bytes_onchip", Unit::Bytes),
    MetricDef::counter("net.bytes_onnode", Unit::Bytes),
    MetricDef::counter("net.bytes_system", Unit::Bytes),
    MetricDef::counter("net.timeout_detections", Unit::Count),
    MetricDef::histogram("net.msg_bytes", Unit::Bytes, SIZE_BUCKETS),
    MetricDef::gauge("mpi.unexpected_hwm", Unit::Count),
    MetricDef::counter("fs.writes", Unit::Count),
    MetricDef::counter("fs.reads", Unit::Count),
    MetricDef::counter("fs.deletes", Unit::Count),
    MetricDef::counter("fs.faults_injected", Unit::Count),
    MetricDef::histogram("fs.write_bytes", Unit::Bytes, SIZE_BUCKETS),
    MetricDef::histogram("fs.read_bytes", Unit::Bytes, SIZE_BUCKETS),
    MetricDef::histogram("fs.write_ns", Unit::Nanos, LATENCY_BUCKETS),
    MetricDef::histogram("fs.read_ns", Unit::Nanos, LATENCY_BUCKETS),
    MetricDef::counter("ckpt.writes", Unit::Count),
    MetricDef::counter("ckpt.bytes_written", Unit::Bytes),
    MetricDef::histogram("ckpt.commit_ns", Unit::Nanos, LATENCY_BUCKETS),
    MetricDef::counter("ckpt.loads", Unit::Count),
    MetricDef::counter("ckpt.corrupt_discarded", Unit::Count),
    MetricDef::counter("ckpt.deletes", Unit::Count),
    MetricDef::counter("fault.activations", Unit::Count),
    MetricDef::counter("fault.soft_flips", Unit::Count),
    MetricDef::counter("net.drops", Unit::Count),
    MetricDef::counter("net.retransmits", Unit::Count),
    MetricDef::counter("net.backoff_ns", Unit::Nanos),
    MetricDef::counter("net.rerouted_hops", Unit::Count),
    MetricDef::counter("net.degraded_ns", Unit::Nanos),
    MetricDef::counter("net.corrupt_drops", Unit::Count),
    // Engine execution-shape gauges, set once post-run from the
    // SimReport's EngineProfile — volatile by nature (see MetricDef).
    MetricDef::gauge("engine.windows", Unit::Count).volatile(),
    MetricDef::gauge("engine.steals", Unit::Count).volatile(),
    MetricDef::gauge("engine.barrier_wait_ns", Unit::Nanos).volatile(),
    MetricDef::gauge("engine.batched_events", Unit::Count).volatile(),
    MetricDef::gauge("engine.batch_max_events", Unit::Count).volatile(),
    MetricDef::counter("net.route_cache_hits", Unit::Count).volatile(),
    MetricDef::counter("net.route_cache_misses", Unit::Count).volatile(),
    MetricDef::counter("net.route_cache_evictions", Unit::Count).volatile(),
    MetricDef::counter("mpi.payload_clones", Unit::Count),
    MetricDef::counter("mpi.payload_copy_bytes", Unit::Bytes),
    MetricDef::counter("rep.heartbeats", Unit::Count),
    MetricDef::counter("rep.detections", Unit::Count),
    MetricDef::counter("rep.failovers", Unit::Count),
    MetricDef::histogram("rep.failover_ns", Unit::Nanos, LATENCY_BUCKETS),
    MetricDef::counter("rep.logical_msgs", Unit::Count),
    MetricDef::counter("rep.copies", Unit::Count),
    // Data-oriented event-core gauges, set once post-run from the
    // EngineProfile — execution-shape data, volatile like the rest of
    // the engine.* family.
    MetricDef::gauge("engine.ingest_skips", Unit::Count).volatile(),
    MetricDef::gauge("engine.window.steal_hwm", Unit::Count).volatile(),
    MetricDef::gauge("engine.window.barrier_wait_hwm_ns", Unit::Nanos).volatile(),
    MetricDef::gauge("engine.pool.reuse_ratio", Unit::Count).volatile(),
    MetricDef::gauge("engine.queue.bucket_hwm", Unit::Count).volatile(),
    // PFS striping + checkpoint-mode metrics. All are deterministic
    // virtual-behavior counts (part of the to_json(None) surface): the
    // stripe queue delays are fixed by the FCFS event order, which the
    // engines reproduce identically.
    MetricDef::counter("fs.stripe.requests", Unit::Count),
    MetricDef::counter("fs.stripe.bytes", Unit::Bytes),
    MetricDef::histogram("fs.stripe.queue_ns", Unit::Nanos, LATENCY_BUCKETS),
    MetricDef::counter("ckpt.mode.agg_gathers", Unit::Count),
    MetricDef::counter("ckpt.mode.agg_forward_bytes", Unit::Bytes),
    MetricDef::counter("ckpt.mode.buddy_copies", Unit::Count),
    MetricDef::counter("ckpt.mode.buddy_spills", Unit::Count),
    MetricDef::counter("ckpt.mode.diff_blocks", Unit::Count),
    MetricDef::counter("ckpt.mode.diff_writes", Unit::Count),
    MetricDef::histogram("ckpt.mode.restore_chain", Unit::Count, CHAIN_BUCKETS),
];

/// A filled histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hist {
    /// Per-bucket sample counts; `counts.len() == buckets.len() + 1`
    /// (the last bucket is overflow).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Counter(u64),
    Gauge(u64),
    Hist(Hist),
}

/// One shard's (or the merged) metric storage, laid out per [`SPEC`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSet {
    slots: Vec<Slot>,
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::new()
    }
}

impl MetricSet {
    /// Fresh storage for the standard schema. The only allocation the
    /// registry ever performs — recording never allocates.
    pub fn new() -> Self {
        let slots = SPEC
            .iter()
            .map(|d| match d.kind {
                MetricKind::Counter => Slot::Counter(0),
                MetricKind::Gauge => Slot::Gauge(0),
                MetricKind::Histogram => Slot::Hist(Hist {
                    counts: vec![0; d.buckets.len() + 1],
                    count: 0,
                    sum: 0,
                }),
            })
            .collect();
        MetricSet { slots }
    }

    /// Record `v` against metric `id`: counters accumulate, gauges keep
    /// the maximum, histograms observe one sample.
    #[inline]
    pub fn add(&mut self, id: usize, v: u64) {
        match &mut self.slots[id] {
            Slot::Counter(c) => *c += v,
            Slot::Gauge(g) => *g = (*g).max(v),
            Slot::Hist(h) => {
                let buckets = SPEC[id].buckets;
                let i = buckets.partition_point(|&b| b < v);
                h.counts[i] += 1;
                h.count += 1;
                h.sum += v;
            }
        }
    }

    /// Merge pre-aggregated histogram parts into histogram `id`:
    /// per-bucket counts (`buckets.len() + 1` entries, overflow last)
    /// plus the sample sum. Lets hot paths batch observations in plain
    /// local arrays and land them in one call instead of paying a
    /// registry lookup per sample.
    pub fn add_hist_parts(&mut self, id: usize, counts: &[u64], sum: u64) {
        let Slot::Hist(h) = &mut self.slots[id] else {
            panic!("metric {id} is not a histogram");
        };
        assert_eq!(counts.len(), h.counts.len(), "bucket layout mismatch");
        let mut n = 0u64;
        for (slot, c) in h.counts.iter_mut().zip(counts) {
            *slot += c;
            n += c;
        }
        h.count += n;
        h.sum += sum;
    }

    /// Scalar value of a metric: counter/gauge value, or a histogram's
    /// sample count.
    pub fn value(&self, id: usize) -> u64 {
        match &self.slots[id] {
            Slot::Counter(v) | Slot::Gauge(v) => *v,
            Slot::Hist(h) => h.count,
        }
    }

    /// The histogram behind `id`, if it is one.
    pub fn hist(&self, id: usize) -> Option<&Hist> {
        match &self.slots[id] {
            Slot::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Merge another shard's storage into this one (counters sum,
    /// gauges max, histograms add elementwise), resetting `other`.
    pub fn merge_from(&mut self, other: &mut MetricSet) {
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter_mut()) {
            match (mine, theirs) {
                (Slot::Counter(a), Slot::Counter(b)) => {
                    *a += *b;
                    *b = 0;
                }
                (Slot::Gauge(a), Slot::Gauge(b)) => {
                    *a = (*a).max(*b);
                    *b = 0;
                }
                (Slot::Hist(a), Slot::Hist(b)) => {
                    for (x, y) in a.counts.iter_mut().zip(b.counts.iter_mut()) {
                        *x += *y;
                        *y = 0;
                    }
                    a.count += b.count;
                    a.sum += b.sum;
                    b.count = 0;
                    b.sum = 0;
                }
                _ => unreachable!("schema-aligned slot kinds"),
            }
        }
    }

    /// Whether any metric recorded anything.
    pub fn any_activity(&self) -> bool {
        self.slots.iter().any(|s| match s {
            Slot::Counter(v) | Slot::Gauge(v) => *v != 0,
            Slot::Hist(h) => h.count != 0,
        })
    }

    /// Append the `"metrics"` JSON object (name → typed value) to `out`.
    /// With `include_volatile = false` the execution-shape metrics are
    /// omitted so the snapshot stays engine-independent (this is the
    /// `to_json(None)` determinism surface).
    pub(crate) fn write_json(&self, out: &mut String, include_volatile: bool) {
        out.push('{');
        let mut first = true;
        for (id, def) in SPEC.iter().enumerate() {
            if def.volatile && !include_volatile {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{{\"kind\":", def.name);
            match &self.slots[id] {
                Slot::Counter(v) => {
                    let _ = write!(
                        out,
                        "\"counter\",\"unit\":\"{}\",\"value\":{v}",
                        def.unit.name()
                    );
                }
                Slot::Gauge(v) => {
                    let _ = write!(
                        out,
                        "\"gauge\",\"unit\":\"{}\",\"value\":{v}",
                        def.unit.name()
                    );
                }
                Slot::Hist(h) => {
                    let _ = write!(
                        out,
                        "\"histogram\",\"unit\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                        def.unit.name(),
                        h.count,
                        h.sum
                    );
                    for (i, b) in def.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("],\"counts\":[");
                    for (i, c) in h.counts.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ids_line_up() {
        assert_eq!(SPEC.len(), ids::CKPT_RESTORE_CHAIN + 1);
        assert_eq!(SPEC[ids::NET_MSGS_EAGER].name, "net.msgs_eager");
        assert_eq!(SPEC[ids::MPI_UNEXPECTED_HWM].kind, MetricKind::Gauge);
        assert_eq!(SPEC[ids::FS_WRITE_NS].kind, MetricKind::Histogram);
        assert_eq!(SPEC[ids::FAULT_SOFT_FLIPS].name, "fault.soft_flips");
        assert_eq!(SPEC[ids::NET_DROPS].name, "net.drops");
        assert_eq!(SPEC[ids::NET_BACKOFF_NS].unit, Unit::Nanos);
        assert_eq!(SPEC[ids::NET_CORRUPT_DROPS].name, "net.corrupt_drops");
        assert_eq!(SPEC[ids::ENGINE_WINDOWS].name, "engine.windows");
        assert_eq!(SPEC[ids::ENGINE_BATCH_MAX].name, "engine.batch_max_events");
        assert_eq!(SPEC[ids::NET_ROUTE_CACHE_HITS].name, "net.route_cache_hits");
        assert_eq!(SPEC[ids::MPI_PAYLOAD_CLONES].name, "mpi.payload_clones");
        assert_eq!(SPEC[ids::MPI_PAYLOAD_COPY_BYTES].unit, Unit::Bytes);
        assert_eq!(SPEC[ids::REP_HEARTBEATS].name, "rep.heartbeats");
        assert_eq!(SPEC[ids::REP_FAILOVER_NS].kind, MetricKind::Histogram);
        assert_eq!(SPEC[ids::REP_COPIES].name, "rep.copies");
        assert_eq!(SPEC[ids::ENGINE_INGEST_SKIPS].name, "engine.ingest_skips");
        assert_eq!(SPEC[ids::ENGINE_STEAL_HWM].name, "engine.window.steal_hwm");
        assert_eq!(
            SPEC[ids::ENGINE_BARRIER_HWM_NS].name,
            "engine.window.barrier_wait_hwm_ns"
        );
        assert_eq!(
            SPEC[ids::ENGINE_POOL_REUSE_RATIO].name,
            "engine.pool.reuse_ratio"
        );
        assert_eq!(
            SPEC[ids::ENGINE_QUEUE_BUCKET_HWM].name,
            "engine.queue.bucket_hwm"
        );
        assert_eq!(SPEC[ids::FS_STRIPE_REQS].name, "fs.stripe.requests");
        assert_eq!(SPEC[ids::FS_STRIPE_BYTES].unit, Unit::Bytes);
        assert_eq!(SPEC[ids::FS_STRIPE_QUEUE_NS].kind, MetricKind::Histogram);
        assert_eq!(SPEC[ids::CKPT_AGG_GATHERS].name, "ckpt.mode.agg_gathers");
        assert_eq!(SPEC[ids::CKPT_BUDDY_SPILLS].name, "ckpt.mode.buddy_spills");
        assert_eq!(SPEC[ids::CKPT_DIFF_BLOCKS].name, "ckpt.mode.diff_blocks");
        assert_eq!(SPEC[ids::CKPT_RESTORE_CHAIN].kind, MetricKind::Histogram);
        assert_eq!(
            SPEC[ids::CKPT_RESTORE_CHAIN].name,
            "ckpt.mode.restore_chain"
        );
        // Exactly the execution-shape metrics (engine profile + route
        // cache occupancy + event-core pool/queue shape) are volatile;
        // payload accounting is part of the deterministic snapshot.
        for (id, def) in SPEC.iter().enumerate() {
            let expect_volatile = (ids::ENGINE_WINDOWS..=ids::NET_ROUTE_CACHE_EVICTIONS)
                .contains(&id)
                || (ids::ENGINE_INGEST_SKIPS..=ids::ENGINE_QUEUE_BUCKET_HWM).contains(&id);
            assert_eq!(def.volatile, expect_volatile, "volatility of {}", def.name);
        }
        // Names are unique.
        let mut names: Vec<_> = SPEC.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SPEC.len());
    }

    #[test]
    fn counter_gauge_hist_semantics() {
        let mut m = MetricSet::new();
        assert!(!m.any_activity());
        m.add(ids::FS_WRITES, 2);
        m.add(ids::FS_WRITES, 3);
        assert_eq!(m.value(ids::FS_WRITES), 5);
        m.add(ids::MPI_UNEXPECTED_HWM, 7);
        m.add(ids::MPI_UNEXPECTED_HWM, 4);
        assert_eq!(m.value(ids::MPI_UNEXPECTED_HWM), 7, "gauge keeps max");
        m.add(ids::NET_MSG_BYTES, 100);
        m.add(ids::NET_MSG_BYTES, 1 << 30);
        let h = m.hist(ids::NET_MSG_BYTES).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 100 + (1 << 30));
        assert_eq!(h.counts[1], 1, "100 lands in (64, 256]");
        assert_eq!(*h.counts.last().unwrap(), 1, "1 GiB overflows");
        assert!(m.any_activity());
    }

    #[test]
    fn hist_parts_merge_like_individual_adds() {
        let mut direct = MetricSet::new();
        let samples = [32u64, 64, 65, 300, 1 << 30];
        for &s in &samples {
            direct.add(ids::NET_MSG_BYTES, s);
        }
        let mut batched = MetricSet::new();
        let mut counts = vec![0u64; SIZE_BUCKETS.len() + 1];
        let mut sum = 0u64;
        for &s in &samples {
            counts[SIZE_BUCKETS.partition_point(|&b| b < s)] += 1;
            sum += s;
        }
        batched.add_hist_parts(ids::NET_MSG_BYTES, &counts, sum);
        assert_eq!(
            direct.hist(ids::NET_MSG_BYTES),
            batched.hist(ids::NET_MSG_BYTES)
        );
    }

    #[test]
    fn bucket_bounds_are_inclusive() {
        let mut m = MetricSet::new();
        m.add(ids::NET_MSG_BYTES, 64);
        assert_eq!(m.hist(ids::NET_MSG_BYTES).unwrap().counts[0], 1);
    }

    #[test]
    fn merge_sums_maxes_and_resets() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        a.add(ids::CKPT_WRITES, 1);
        b.add(ids::CKPT_WRITES, 2);
        a.add(ids::MPI_UNEXPECTED_HWM, 3);
        b.add(ids::MPI_UNEXPECTED_HWM, 9);
        b.add(ids::FS_WRITE_NS, 500);
        a.merge_from(&mut b);
        assert_eq!(a.value(ids::CKPT_WRITES), 3);
        assert_eq!(a.value(ids::MPI_UNEXPECTED_HWM), 9);
        assert_eq!(a.hist(ids::FS_WRITE_NS).unwrap().count, 1);
        assert!(!b.any_activity(), "merge drains the source");
    }

    #[test]
    fn json_is_parseable() {
        let mut m = MetricSet::new();
        m.add(ids::NET_MSGS_EAGER, 4);
        m.add(ids::FS_WRITE_BYTES, 1024);
        let mut s = String::new();
        m.write_json(&mut s, true);
        let v = crate::json::Json::parse(&s).expect("valid JSON");
        assert_eq!(
            v.get("net.msgs_eager")
                .and_then(|e| e.get("value"))
                .and_then(|n| n.as_u64()),
            Some(4)
        );
        let hist = v.get("fs.write_bytes").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
    }

    #[test]
    fn volatile_metrics_are_gated_out_of_snapshots() {
        let mut m = MetricSet::new();
        m.add(ids::ENGINE_WINDOWS, 12);
        m.add(ids::CKPT_WRITES, 1);
        let mut without = String::new();
        m.write_json(&mut without, false);
        let v = crate::json::Json::parse(&without).expect("valid JSON");
        assert!(v.get("engine.windows").is_none(), "volatile gated out");
        assert!(v.get("ckpt.writes").is_some());
        let mut with = String::new();
        m.write_json(&mut with, true);
        let v = crate::json::Json::parse(&with).expect("valid JSON");
        assert_eq!(
            v.get("engine.windows")
                .and_then(|e| e.get("value"))
                .and_then(|n| n.as_u64()),
            Some(12)
        );
    }
}
