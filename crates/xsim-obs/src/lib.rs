//! # xsim-obs — the observability layer
//!
//! xSim is "designed like a traditional performance tool" (paper §II-A)
//! and sits alongside trace-driven analyzers such as DIMEMAS, PARAVER
//! and Vampir. This crate provides the instrumentation substrate every
//! performance or resilience investigation of the simulator builds on:
//!
//! * [`MetricSet`] — a fixed-schema metrics registry (counters, gauges,
//!   fixed-bucket histograms). The schema is the static [`SPEC`] table;
//!   metric handles are `const` indices ([`ids`]), so the hot path is a
//!   bounds-checked array access with **no allocation and no hashing**.
//! * [`ObsService`] — the per-shard kernel service carrying one
//!   `MetricSet` plus a buffer of subsystem [`ObsSpan`]s (file I/O,
//!   checkpoint commits…). Installed by `SimBuilder::metrics(true)`;
//!   when absent, every instrumentation site reduces to one failed
//!   `TypeId` lookup — near-zero cost when disabled.
//! * [`chrome`] — a streaming Chrome trace-event JSON writer
//!   (Perfetto-viewable) that the MPI layer uses to merge its phase
//!   trace with the subsystem spans recorded here.
//! * [`json`] — a dependency-free JSON value/parser used by the
//!   exporters and by tests that parse the emitted artifacts back.
//!
//! Layering: this crate depends only on `xsim-core`, so every other
//! subsystem (net, fs, ckpt, fault, mpi) can record into it.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod service;

pub use chrome::ChromeTraceWriter;
pub use json::Json;
pub use metrics::{ids, Hist, MetricDef, MetricKind, MetricSet, Unit, SPEC};
pub use service::{ObsReport, ObsService, ObsSink, ObsSpan};
