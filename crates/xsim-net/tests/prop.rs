//! Property-based tests for topologies and the communication model.

use proptest::prelude::*;
use xsim_core::{Rank, SimTime};
use xsim_net::{NetModel, Topology};

fn arb_dims() -> impl Strategy<Value = [usize; 3]> {
    (1usize..=8, 1usize..=8, 1usize..=8).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        arb_dims().prop_map(|dims| Topology::Torus3d { dims }),
        arb_dims().prop_map(|dims| Topology::Mesh3d { dims }),
        (1usize..=256).prop_map(|nodes| Topology::FullyConnected { nodes }),
        (1usize..=256).prop_map(|nodes| Topology::Star { nodes }),
        (0u32..=8).prop_map(|dim| Topology::Hypercube { dim }),
    ]
}

proptest! {
    #[test]
    fn hops_symmetric_and_bounded(topo in arb_topology(), a_seed: usize, b_seed: usize) {
        let n = topo.nodes();
        prop_assume!(n > 0);
        let a = a_seed % n;
        let b = b_seed % n;
        let ab = topo.hops(a, b);
        prop_assert_eq!(ab, topo.hops(b, a), "symmetry");
        prop_assert_eq!(ab == 0, a == b, "zero iff same node");
        prop_assert!(ab <= topo.diameter(), "within diameter");
    }

    #[test]
    fn torus_triangle_inequality(dims in arb_dims(), s in proptest::collection::vec(0usize..4096, 3)) {
        let t = Topology::Torus3d { dims };
        let n = t.nodes();
        let (a, b, c) = (s[0] % n, s[1] % n, s[2] % n);
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn mesh_triangle_inequality(dims in arb_dims(), s in proptest::collection::vec(0usize..4096, 3)) {
        let t = Topology::Mesh3d { dims };
        let n = t.nodes();
        let (a, b, c) = (s[0] % n, s[1] % n, s[2] % n);
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn coords_round_trip(dims in arb_dims(), seed: usize) {
        for topo in [Topology::Torus3d { dims }, Topology::Mesh3d { dims }] {
            let n = topo.nodes();
            let node = seed % n;
            prop_assert_eq!(topo.node_at(topo.coords(node)), node);
        }
    }

    #[test]
    fn neighbors_are_mutual(dims in arb_dims(), seed: usize) {
        let t = Topology::Torus3d { dims };
        let n = t.nodes();
        let node = seed % n;
        for nb in t.torus_neighbors(node).into_iter().flatten() {
            let back = t.torus_neighbors(nb);
            prop_assert!(
                back.into_iter().flatten().any(|x| x == node),
                "neighbor relation must be mutual"
            );
        }
    }

    #[test]
    fn p2p_timing_monotone_in_size(bytes_a in 0usize..10_000_000, bytes_b in 0usize..10_000_000) {
        let m = NetModel::paper_machine();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let t_lo = m.p2p(Rank(0), Rank(1), lo);
        let t_hi = m.p2p(Rank(0), Rank(1), hi);
        prop_assert!(t_lo.transfer <= t_hi.transfer);
        prop_assert_eq!(t_lo.latency, t_hi.latency, "latency independent of size");
    }

    #[test]
    fn min_latency_is_lower_bound_for_cross_rank(src in 0u32..32768, dst in 0u32..32768, bytes in 0usize..1_000_000) {
        let m = NetModel::paper_machine();
        let t = m.p2p(Rank(src), Rank(dst), bytes);
        if src != dst {
            // Cross-rank messages respect the conservative lookahead.
            prop_assert!(t.latency >= m.min_latency());
        }
        // Even self-sends (same node, on-node class, lookahead-exempt
        // since they never cross engine shards) have positive latency.
        prop_assert!(t.latency > SimTime::ZERO);
    }
}

// ---------------------------------------------------------------------
// Fault-aware routing properties (link/switch faults on the torus).

use xsim_net::{LinkFaultKind, LinkStateTable, NetFault};

fn arb_torus() -> impl Strategy<Value = Topology> {
    (2usize..=4, 2usize..=4, 2usize..=4).prop_map(|(a, b, c)| Topology::Torus3d { dims: [a, b, c] })
}

/// Seeds for up to 8 dead links; `node` seeds are reduced mod the node
/// count in the test body (keeps the strategy independent of the
/// generated topology — no `prop_flat_map` needed).
fn arb_link_fault_seeds() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..4096, 0usize..6), 0..8)
}

/// Independent connectivity/distance oracle: plain BFS over links the
/// table reports live, with none of the routing code's shortcuts.
fn oracle_dist(tbl: &LinkStateTable, src: usize, dst: usize, t: SimTime) -> Option<u32> {
    let topo = tbl.topology();
    let mut dist = vec![None; topo.nodes()];
    dist[src] = Some(0u32);
    let mut q = std::collections::VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for v in topo.torus_neighbors(u).into_iter().flatten() {
            if dist[v].is_none() && tbl.link_factor(u, v, t).is_some() {
                dist[v] = Some(dist[u].unwrap() + 1);
                q.push_back(v);
            }
        }
    }
    dist[dst]
}

proptest! {
    /// One dead link never partitions a torus (every dimension is a
    /// ring): the reroute is finite, at least as long as the fault-free
    /// route, and the single-link detour costs at most two extra hops.
    #[test]
    fn single_dead_link_reroutes_finite_and_no_shorter(
        topo in arb_torus(), node_s: usize, dir in 0usize..6, a_s: usize, b_s: usize,
    ) {
        let n = topo.nodes();
        let (node, a, b) = (node_s % n, a_s % n, b_s % n);
        let mut tbl = LinkStateTable::new(topo.clone());
        tbl.add(NetFault {
            node,
            dir: Some(dir),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        let r = tbl.route(a, b, SimTime::ZERO)
            .expect("a single dead link cannot partition a torus");
        let base = topo.hops(a, b);
        prop_assert!(r.hops >= base, "reroute never shortens: {} < {base}", r.hops);
        prop_assert!(r.hops <= base + 2, "one-link detour is at most +2 hops");
    }

    /// Against an independent BFS oracle: whenever the fault set leaves
    /// `a` and `b` connected, `route()` finds exactly the minimal live
    /// distance (≥ the fault-free hops); whenever it cuts them apart,
    /// partition detection fires (`None`) — never a bogus finite route.
    #[test]
    fn routing_matches_oracle_under_arbitrary_cuts(
        topo in arb_torus(), seeds in arb_link_fault_seeds(), a_s: usize, b_s: usize,
    ) {
        let n = topo.nodes();
        let (a, b) = (a_s % n, b_s % n);
        let mut tbl = LinkStateTable::new(topo.clone());
        for (node_s, dir) in seeds {
            tbl.add(NetFault {
                node: node_s % n,
                dir: Some(dir),
                kind: LinkFaultKind::Down,
                from: SimTime::ZERO,
                until: None,
            });
        }
        let got = tbl.route(a, b, SimTime::ZERO).map(|r| r.hops);
        let want = oracle_dist(&tbl, a, b, SimTime::ZERO);
        prop_assert_eq!(got, want, "route() must agree with the BFS oracle");
        if let Some(h) = got {
            prop_assert!(h >= topo.hops(a, b), "live route no shorter than fault-free");
        }
    }

    /// The epoch-keyed route cache is semantically invisible: for random
    /// windowed (activate + repair) fault schedules, the cached
    /// [`LinkStateTable::route`] equals the cache-bypassing
    /// [`LinkStateTable::route_uncached`] oracle at every probe — taken
    /// on, just before and just after every epoch boundary, where a
    /// stale entry would leak a neighbouring epoch's link state — and
    /// the warm (hit) path answers identically to the cold (miss) path.
    #[test]
    fn cached_routes_equal_fresh_bfs_across_epochs(
        topo in arb_torus(),
        seeds in proptest::collection::vec((0usize..4096, 0usize..6, 0u64..200, 1u64..100, 0u8..2), 1..6),
        pairs in proptest::collection::vec((0usize..4096, 0usize..4096), 1..5),
        extra_t in 0u64..400,
    ) {
        let n = topo.nodes();
        let mut tbl = LinkStateTable::new(topo.clone());
        for (node_s, dir, from, dur, kind) in seeds {
            tbl.add(NetFault {
                node: node_s % n,
                dir: Some(dir),
                kind: if kind == 0 { LinkFaultKind::Down } else { LinkFaultKind::Degraded(0.5) },
                from: SimTime(from),
                until: Some(SimTime(from + dur)),
            });
        }
        // Probe instants straddling every epoch boundary, plus an
        // arbitrary one.
        let mut probes = vec![SimTime(extra_t)];
        for e in 1..tbl.epoch_count() {
            let b = tbl.epoch_bound(e - 1);
            probes.push(SimTime(b.0.saturating_sub(1)));
            probes.push(b);
            probes.push(SimTime(b.0 + 1));
        }
        for &(a_s, b_s) in &pairs {
            let (a, b) = (a_s % n, b_s % n);
            for &t in &probes {
                let want = tbl.route_uncached(a, b, t);
                prop_assert_eq!(tbl.route(a, b, t), want, "cold at t={:?}", t);
                prop_assert_eq!(tbl.route(a, b, t), want, "warm at t={:?}", t);
            }
        }
    }

    /// A switch fault isolates its node completely: routing to or from
    /// it reports a partition from every other node, at the table and
    /// at the model level (`p2p_at` → `None`), while traffic between
    /// the remaining nodes still routes.
    #[test]
    fn switch_cut_fires_partition_detection(
        topo in arb_torus(), victim_s: usize, other_s: usize,
    ) {
        let n = topo.nodes();
        prop_assume!(n > 2);
        let victim = victim_s % n;
        let other = other_s % n;
        prop_assume!(other != victim);
        let fault = NetFault {
            node: victim,
            dir: None, // the node's switch: all its links
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        };
        let mut tbl = LinkStateTable::new(topo.clone());
        tbl.add(fault);
        prop_assert_eq!(tbl.route(other, victim, SimTime::ZERO), None, "unreachable");
        prop_assert_eq!(tbl.route(victim, other, SimTime::ZERO), None, "symmetric");
        // Survivors still reach each other around the dead switch.
        let third = (0..n).find(|x| *x != victim && *x != other).expect("n > 2");
        prop_assert!(tbl.route(other, third, SimTime::ZERO).is_some());

        // Model level: paper_machine maps rank i to node i 1:1.
        let mut m = NetModel::paper_machine();
        m.topology = topo;
        let m = m.with_faults(tbl);
        prop_assert!(
            m.p2p_at(Rank(other as u32), Rank(victim as u32), 64, SimTime::ZERO).is_none(),
            "p2p_at must surface the partition"
        );
        prop_assert!(
            m.p2p_at(Rank(other as u32), Rank(third as u32), 64, SimTime::ZERO).is_some()
        );
    }
}
