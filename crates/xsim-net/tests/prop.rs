//! Property-based tests for topologies and the communication model.

use proptest::prelude::*;
use xsim_core::{Rank, SimTime};
use xsim_net::{NetModel, Topology};

fn arb_dims() -> impl Strategy<Value = [usize; 3]> {
    (1usize..=8, 1usize..=8, 1usize..=8).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        arb_dims().prop_map(|dims| Topology::Torus3d { dims }),
        arb_dims().prop_map(|dims| Topology::Mesh3d { dims }),
        (1usize..=256).prop_map(|nodes| Topology::FullyConnected { nodes }),
        (1usize..=256).prop_map(|nodes| Topology::Star { nodes }),
        (0u32..=8).prop_map(|dim| Topology::Hypercube { dim }),
    ]
}

proptest! {
    #[test]
    fn hops_symmetric_and_bounded(topo in arb_topology(), a_seed: usize, b_seed: usize) {
        let n = topo.nodes();
        prop_assume!(n > 0);
        let a = a_seed % n;
        let b = b_seed % n;
        let ab = topo.hops(a, b);
        prop_assert_eq!(ab, topo.hops(b, a), "symmetry");
        prop_assert_eq!(ab == 0, a == b, "zero iff same node");
        prop_assert!(ab <= topo.diameter(), "within diameter");
    }

    #[test]
    fn torus_triangle_inequality(dims in arb_dims(), s in proptest::collection::vec(0usize..4096, 3)) {
        let t = Topology::Torus3d { dims };
        let n = t.nodes();
        let (a, b, c) = (s[0] % n, s[1] % n, s[2] % n);
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn mesh_triangle_inequality(dims in arb_dims(), s in proptest::collection::vec(0usize..4096, 3)) {
        let t = Topology::Mesh3d { dims };
        let n = t.nodes();
        let (a, b, c) = (s[0] % n, s[1] % n, s[2] % n);
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn coords_round_trip(dims in arb_dims(), seed: usize) {
        for topo in [Topology::Torus3d { dims }, Topology::Mesh3d { dims }] {
            let n = topo.nodes();
            let node = seed % n;
            prop_assert_eq!(topo.node_at(topo.coords(node)), node);
        }
    }

    #[test]
    fn neighbors_are_mutual(dims in arb_dims(), seed: usize) {
        let t = Topology::Torus3d { dims };
        let n = t.nodes();
        let node = seed % n;
        for nb in t.torus_neighbors(node).into_iter().flatten() {
            let back = t.torus_neighbors(nb);
            prop_assert!(
                back.into_iter().flatten().any(|x| x == node),
                "neighbor relation must be mutual"
            );
        }
    }

    #[test]
    fn p2p_timing_monotone_in_size(bytes_a in 0usize..10_000_000, bytes_b in 0usize..10_000_000) {
        let m = NetModel::paper_machine();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let t_lo = m.p2p(Rank(0), Rank(1), lo);
        let t_hi = m.p2p(Rank(0), Rank(1), hi);
        prop_assert!(t_lo.transfer <= t_hi.transfer);
        prop_assert_eq!(t_lo.latency, t_hi.latency, "latency independent of size");
    }

    #[test]
    fn min_latency_is_lower_bound_for_cross_rank(src in 0u32..32768, dst in 0u32..32768, bytes in 0usize..1_000_000) {
        let m = NetModel::paper_machine();
        let t = m.p2p(Rank(src), Rank(dst), bytes);
        if src != dst {
            // Cross-rank messages respect the conservative lookahead.
            prop_assert!(t.latency >= m.min_latency());
        }
        // Even self-sends (same node, on-node class, lookahead-exempt
        // since they never cross engine shards) have positive latency.
        prop_assert!(t.latency > SimTime::ZERO);
    }
}
