//! Interconnect topologies and dimension-ordered hop counts.

use std::fmt;

/// A compute-node index within the simulated machine.
pub type NodeId = usize;

/// The shape of the simulated interconnect.
///
/// Hop counts assume minimal (dimension-ordered, for meshes/tori)
/// routing; that is the standard model for latency estimation in
/// communication-accurate simulators.
///
/// ```
/// use xsim_net::Topology;
///
/// let torus = Topology::paper_torus(); // the paper's 32x32x32 machine
/// assert_eq!(torus.nodes(), 32_768);
/// assert_eq!(torus.diameter(), 48);
/// // Wraparound makes opposite edges adjacent.
/// assert_eq!(torus.hops(torus.node_at([0, 0, 0]), torus.node_at([31, 0, 0])), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every node one hop from every other (crossbar abstraction).
    FullyConnected {
        /// Number of nodes.
        nodes: usize,
    },
    /// All traffic relayed through node 0 (two hops between leaves).
    Star {
        /// Number of nodes including the hub (node 0).
        nodes: usize,
    },
    /// 3-D mesh without wraparound links.
    Mesh3d {
        /// Extent in x, y, z.
        dims: [usize; 3],
    },
    /// 3-D wrapped torus — the paper's simulated system is a 32×32×32
    /// torus (§V-C).
    Torus3d {
        /// Extent in x, y, z.
        dims: [usize; 3],
    },
    /// Binary hypercube of dimension `dim` (2^dim nodes).
    Hypercube {
        /// Dimension (number of address bits).
        dim: u32,
    },
    /// Two-level fat tree: `leaves` leaf switches of `nodes_per_leaf`
    /// nodes each, fully connected through a spine. Same-leaf traffic
    /// takes 2 hops (node→leaf→node), cross-leaf traffic 4
    /// (node→leaf→spine→leaf→node).
    FatTree {
        /// Number of leaf switches.
        leaves: usize,
        /// Nodes per leaf switch.
        nodes_per_leaf: usize,
    },
    /// Dragonfly: `groups` all-to-all-connected groups of
    /// `routers_per_group` routers with `nodes_per_router` nodes each.
    /// Minimal routing: up to 1 hop to the local router, 1 intra-group
    /// hop, 1 global hop, 1 intra-group hop, 1 hop to the node.
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers per group.
        routers_per_group: usize,
        /// Nodes per router.
        nodes_per_router: usize,
    },
}

impl Topology {
    /// The paper's simulated machine: a 32×32×32 wrapped torus (32,768
    /// nodes).
    pub fn paper_torus() -> Self {
        Topology::Torus3d { dims: [32, 32, 32] }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::FullyConnected { nodes } | Topology::Star { nodes } => nodes,
            Topology::Mesh3d { dims } | Topology::Torus3d { dims } => dims[0] * dims[1] * dims[2],
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::FatTree {
                leaves,
                nodes_per_leaf,
            } => leaves * nodes_per_leaf,
            Topology::Dragonfly {
                groups,
                routers_per_group,
                nodes_per_router,
            } => groups * routers_per_group * nodes_per_router,
        }
    }

    /// Convert a node index to mesh/torus coordinates (x fastest).
    pub fn coords(&self, node: NodeId) -> [usize; 3] {
        match *self {
            Topology::Mesh3d { dims } | Topology::Torus3d { dims } => {
                debug_assert!(node < self.nodes());
                [
                    node % dims[0],
                    (node / dims[0]) % dims[1],
                    node / (dims[0] * dims[1]),
                ]
            }
            _ => [node, 0, 0],
        }
    }

    /// Convert coordinates back to a node index.
    pub fn node_at(&self, c: [usize; 3]) -> NodeId {
        match *self {
            Topology::Mesh3d { dims } | Topology::Torus3d { dims } => {
                debug_assert!(c[0] < dims[0] && c[1] < dims[1] && c[2] < dims[2]);
                c[0] + dims[0] * (c[1] + dims[1] * c[2])
            }
            _ => c[0],
        }
    }

    /// Minimal-route hop count between two nodes. Zero iff `a == b`.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::FullyConnected { .. } => 1,
            Topology::Star { .. } => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
            Topology::Mesh3d { .. } => {
                let ca = self.coords(a);
                let cb = self.coords(b);
                (0..3)
                    .map(|i| (ca[i] as i64 - cb[i] as i64).unsigned_abs() as u32)
                    .sum()
            }
            Topology::Torus3d { dims } => {
                let ca = self.coords(a);
                let cb = self.coords(b);
                (0..3)
                    .map(|i| {
                        let d = (ca[i] as i64 - cb[i] as i64).unsigned_abs() as usize;
                        d.min(dims[i] - d) as u32
                    })
                    .sum()
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones(),
            Topology::FatTree { nodes_per_leaf, .. } => {
                if a / nodes_per_leaf == b / nodes_per_leaf {
                    2 // node -> leaf -> node
                } else {
                    4 // node -> leaf -> spine -> leaf -> node
                }
            }
            Topology::Dragonfly {
                routers_per_group,
                nodes_per_router,
                ..
            } => {
                let router = |n: NodeId| n / nodes_per_router;
                let group = |n: NodeId| router(n) / routers_per_group;
                let (ra, rb) = (router(a), router(b));
                if ra == rb {
                    2 // node -> router -> node
                } else if group(a) == group(b) {
                    3 // node -> router -> router -> node
                } else {
                    // node -> router [-> gateway] -> global -> [gateway ->]
                    // router -> node; minimal path uses one global link and
                    // at most one local hop on each side.
                    5
                }
            }
        }
    }

    /// Precompute the dense healthy-topology hop table, if this
    /// topology qualifies (see [`HopTable::build`]).
    pub fn hop_table(&self) -> Option<HopTable> {
        HopTable::build(self)
    }

    /// Network diameter: the maximum minimal-route hop count.
    pub fn diameter(&self) -> u32 {
        match *self {
            Topology::FullyConnected { nodes } => u32::from(nodes > 1),
            Topology::Star { nodes } => match nodes {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            },
            Topology::Mesh3d { dims } => dims.iter().map(|d| (d - 1) as u32).sum(),
            Topology::Torus3d { dims } => dims.iter().map(|d| (d / 2) as u32).sum(),
            Topology::Hypercube { dim } => dim,
            Topology::FatTree { leaves, .. } => {
                if leaves > 1 {
                    4
                } else {
                    2
                }
            }
            Topology::Dragonfly { groups, .. } => {
                if groups > 1 {
                    5
                } else {
                    3
                }
            }
        }
    }

    /// The wrapped-torus neighbours of a node along each dimension (±x,
    /// ±y, ±z). Used by halo-exchange decompositions. For a mesh,
    /// out-of-range neighbours are `None`.
    pub fn torus_neighbors(&self, node: NodeId) -> [Option<NodeId>; 6] {
        match *self {
            Topology::Torus3d { dims } => {
                let c = self.coords(node);
                let mut out = [None; 6];
                for (i, slot) in out.iter_mut().enumerate() {
                    let dim = i / 2;
                    let mut cc = c;
                    cc[dim] = if i % 2 == 0 {
                        (c[dim] + 1) % dims[dim]
                    } else {
                        (c[dim] + dims[dim] - 1) % dims[dim]
                    };
                    *slot = Some(self.node_at(cc));
                }
                out
            }
            Topology::Mesh3d { dims } => {
                let c = self.coords(node);
                let mut out = [None; 6];
                for (i, slot) in out.iter_mut().enumerate() {
                    let dim = i / 2;
                    let mut cc = c;
                    if i % 2 == 0 {
                        if c[dim] + 1 >= dims[dim] {
                            continue;
                        }
                        cc[dim] = c[dim] + 1;
                    } else {
                        if c[dim] == 0 {
                            continue;
                        }
                        cc[dim] = c[dim] - 1;
                    }
                    *slot = Some(self.node_at(cc));
                }
                out
            }
            _ => [None; 6],
        }
    }
}

/// Dense precomputed healthy-topology hop table: `hops(a, b)` becomes a
/// single `u16` load instead of coordinate arithmetic. Built only where
/// the memory is trivially affordable and the closed form actually does
/// work (the 3-D torus/mesh coordinate math); a full table for the
/// paper's 32,768-node torus would need a billion entries, so large
/// machines keep the O(1) closed form (see DESIGN.md, "message path").
#[derive(Debug, Clone)]
pub struct HopTable {
    n: usize,
    hops: Vec<u16>,
}

impl HopTable {
    /// Largest node count a dense table is built for (`MAX_NODES²`
    /// `u16` entries = 8 MiB at the bound).
    pub const MAX_NODES: usize = 2048;

    /// Build the table for `topo`, or `None` when the topology is not a
    /// torus/mesh (other closed forms are already a compare or a popcount)
    /// or has more than [`HopTable::MAX_NODES`] nodes.
    pub fn build(topo: &Topology) -> Option<HopTable> {
        if !matches!(topo, Topology::Torus3d { .. } | Topology::Mesh3d { .. }) {
            return None;
        }
        let n = topo.nodes();
        if n == 0 || n > Self::MAX_NODES {
            return None;
        }
        let mut hops = vec![0u16; n * n];
        for a in 0..n {
            for b in 0..n {
                hops[a * n + b] = topo.hops(a, b) as u16;
            }
        }
        Some(HopTable { n, hops })
    }

    /// Hop count between two nodes (panics on out-of-range ids, like
    /// the closed form's coordinate math would).
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a * self.n + b] as u32
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::FullyConnected { nodes } => write!(f, "fully-connected({nodes})"),
            Topology::Star { nodes } => write!(f, "star({nodes})"),
            Topology::Mesh3d { dims } => {
                write!(f, "mesh {}x{}x{}", dims[0], dims[1], dims[2])
            }
            Topology::Torus3d { dims } => {
                write!(f, "torus {}x{}x{}", dims[0], dims[1], dims[2])
            }
            Topology::Hypercube { dim } => write!(f, "hypercube(2^{dim})"),
            Topology::FatTree {
                leaves,
                nodes_per_leaf,
            } => write!(f, "fat-tree {leaves}x{nodes_per_leaf}"),
            Topology::Dragonfly {
                groups,
                routers_per_group,
                nodes_per_router,
            } => write!(
                f,
                "dragonfly {groups}g x {routers_per_group}r x {nodes_per_router}n"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Topology::Torus3d { dims: [4, 5, 6] };
        for n in 0..t.nodes() {
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::Torus3d { dims: [8, 8, 8] };
        let a = t.node_at([0, 0, 0]);
        let b = t.node_at([7, 0, 0]);
        assert_eq!(t.hops(a, b), 1, "wraparound link");
        let c = t.node_at([4, 0, 0]);
        assert_eq!(t.hops(a, c), 4, "opposite side");
    }

    #[test]
    fn mesh_does_not_wrap() {
        let t = Topology::Mesh3d { dims: [8, 8, 8] };
        let a = t.node_at([0, 0, 0]);
        let b = t.node_at([7, 0, 0]);
        assert_eq!(t.hops(a, b), 7);
    }

    #[test]
    fn paper_torus_diameter() {
        let t = Topology::paper_torus();
        assert_eq!(t.nodes(), 32_768);
        assert_eq!(t.diameter(), 48); // 16 per dimension
    }

    #[test]
    fn hypercube_hops_are_hamming() {
        let t = Topology::Hypercube { dim: 10 };
        assert_eq!(t.nodes(), 1024);
        assert_eq!(t.hops(0b1010, 0b0110), 2);
        assert_eq!(t.diameter(), 10);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::Star { nodes: 10 };
        assert_eq!(t.hops(0, 5), 1);
        assert_eq!(t.hops(3, 5), 2);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected { nodes: 100 };
        assert_eq!(t.hops(13, 87), 1);
        assert_eq!(t.hops(13, 13), 0);
    }

    #[test]
    fn fat_tree_hops() {
        let t = Topology::FatTree {
            leaves: 4,
            nodes_per_leaf: 8,
        };
        assert_eq!(t.nodes(), 32);
        assert_eq!(t.hops(0, 7), 2, "same leaf");
        assert_eq!(t.hops(0, 8), 4, "cross leaf");
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.diameter(), 4);
        assert_eq!(
            Topology::FatTree {
                leaves: 1,
                nodes_per_leaf: 8
            }
            .diameter(),
            2
        );
    }

    #[test]
    fn dragonfly_hops() {
        let t = Topology::Dragonfly {
            groups: 3,
            routers_per_group: 4,
            nodes_per_router: 2,
        };
        assert_eq!(t.nodes(), 24);
        assert_eq!(t.hops(0, 1), 2, "same router");
        assert_eq!(t.hops(0, 2), 3, "same group, different router");
        assert_eq!(t.hops(0, 8), 5, "different group");
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn torus_neighbors_are_one_hop() {
        let t = Topology::Torus3d { dims: [4, 4, 4] };
        for n in 0..t.nodes() {
            for nb in t.torus_neighbors(n).into_iter().flatten() {
                assert_eq!(t.hops(n, nb), 1, "node {n} neighbor {nb}");
            }
        }
    }

    #[test]
    fn mesh_neighbors_respect_edges() {
        let t = Topology::Mesh3d { dims: [3, 3, 3] };
        let corner = t.node_at([0, 0, 0]);
        let nbs = t.torus_neighbors(corner);
        assert_eq!(nbs.iter().flatten().count(), 3);
        let center = t.node_at([1, 1, 1]);
        assert_eq!(t.torus_neighbors(center).iter().flatten().count(), 6);
    }

    #[test]
    fn hop_table_matches_closed_form() {
        for t in [
            Topology::Torus3d { dims: [4, 4, 4] },
            Topology::Mesh3d { dims: [3, 4, 5] },
        ] {
            let table = t.hop_table().expect("small torus/mesh qualifies");
            for a in 0..t.nodes() {
                for b in 0..t.nodes() {
                    assert_eq!(table.get(a, b), t.hops(a, b), "{t}: {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn hop_table_gates_on_size_and_kind() {
        assert!(Topology::paper_torus().hop_table().is_none(), "32k nodes");
        assert!(Topology::FullyConnected { nodes: 8 }.hop_table().is_none());
        assert!(Topology::Hypercube { dim: 4 }.hop_table().is_none());
    }
}
