//! End-to-end communication timing and failure-detection timeouts.

use crate::fault::LinkStateTable;
use crate::topology::Topology;
use std::sync::Arc;
use xsim_core::{Rank, SimTime};

/// The hierarchical network class a message travels on (paper §IV-C:
/// "each simulated network, such as the on-chip, on-node, and system-wide
/// network, has its own network communication timeout").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// Between cores of one processor.
    OnChip,
    /// Between processors of one node.
    OnNode,
    /// Between nodes, across the interconnect topology.
    System,
}

/// Per-class link parameters.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Per-hop wire latency.
    pub latency: SimTime,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Communication timeout for failure detection on this network: a
    /// pending operation towards a failed peer errors out this long after
    /// the later of (post time, failure time) — paper §IV-C.
    pub timeout: SimTime,
}

impl Link {
    /// The paper's system interconnect: 1 µs link latency, 32 GB/s link
    /// bandwidth (§V-C). The timeout is not given numerically in the
    /// paper ("configurable"); 1 s is a representative HPC RAS value.
    pub fn paper_system() -> Self {
        Link {
            latency: SimTime::from_micros(1),
            bandwidth_bps: 32.0e9,
            timeout: SimTime::from_secs(1),
        }
    }

    /// Typical shared-memory on-node transport.
    pub fn default_on_node() -> Self {
        Link {
            latency: SimTime::from_nanos(200),
            bandwidth_bps: 64.0e9,
            timeout: SimTime::from_millis(100),
        }
    }

    /// Typical on-chip transport between cores.
    pub fn default_on_chip() -> Self {
        Link {
            latency: SimTime::from_nanos(40),
            bandwidth_bps: 128.0e9,
            timeout: SimTime::from_millis(10),
        }
    }

    /// Pure serialization time of `bytes` at this link's bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        if bytes == 0 || self.bandwidth_bps <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Timing decomposition of one point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2pTiming {
    /// End-to-end wire latency (hops × per-hop latency).
    pub latency: SimTime,
    /// Payload serialization time.
    pub transfer: SimTime,
    /// Whether the eager protocol applies (payload ≤ threshold). Above
    /// the threshold the rendezvous protocol adds a request-to-send /
    /// clear-to-send round trip and ties the sender to the receiver's
    /// posting of the matching receive.
    pub eager: bool,
    /// The class of network used, selecting the failure-detection timeout.
    pub class: NetClass,
}

impl P2pTiming {
    /// Earliest possible arrival of the payload relative to injection
    /// (eager) or relative to the rendezvous handshake completing.
    pub fn wire_time(&self) -> SimTime {
        self.latency + self.transfer
    }

    /// Duration of the rendezvous RTS/CTS handshake (one round trip of
    /// control messages); zero for eager messages.
    pub fn handshake(&self) -> SimTime {
        if self.eager {
            SimTime::ZERO
        } else {
            self.latency + self.latency
        }
    }
}

/// The complete network model: topology + link classes + protocol
/// parameters + rank placement.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Interconnect shape.
    pub topology: Topology,
    /// Simulated MPI ranks per compute node. The paper places one rank
    /// per node, assuming an MPI+X programming model (§V-C).
    pub ranks_per_node: usize,
    /// System (inter-node) link parameters.
    pub system: Link,
    /// On-node link parameters (used when `ranks_per_node > 1`).
    pub on_node: Link,
    /// On-chip link parameters (reserved for core-granularity placement).
    pub on_chip: Link,
    /// Eager/rendezvous protocol threshold in bytes. The paper uses
    /// 256 kB (§V-C).
    pub eager_threshold: usize,
    /// Fixed per-message software overhead charged to the sender (MPI
    /// stack injection cost).
    pub send_overhead: SimTime,
    /// Fixed per-message software overhead charged to the receiver
    /// (matching and completion cost).
    pub recv_overhead: SimTime,
    /// Model receiver-side drain contention: message completions at one
    /// rank serialize at `recv_overhead` spacing (a single-NIC/CPU drain
    /// path). Off by default — the paper's latency/bandwidth model has
    /// no contention; see the ablations harness for its effect on
    /// linear collectives.
    pub serialize_recv: bool,
    /// Live link/switch fault state, consulted by [`NetModel::p2p_at`]
    /// for fault-aware routing. `None` (the default) keeps the
    /// fault-free fast path.
    pub faults: Option<Arc<LinkStateTable>>,
    /// Precomputed healthy-topology hop table (see
    /// [`NetModel::precompute_hops`]): the no-fault system-class path
    /// becomes a pure table lookup on machines small enough to afford
    /// the dense table. `None` falls back to the closed-form
    /// [`Topology::hops`].
    pub hop_table: Option<Arc<crate::topology::HopTable>>,
}

/// Fault-aware point-to-point route: the timing plus how far it departs
/// from the fault-free route (for observability accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2pRoute {
    /// End-to-end timing over the live route.
    pub timing: P2pTiming,
    /// Hops taken beyond the fault-free minimal route (reroute
    /// inflation).
    pub extra_hops: u32,
    /// Serialization time added by degraded-link bandwidth.
    pub degraded_extra: SimTime,
}

impl NetModel {
    /// The paper's simulated system: 32×32×32 wrapped torus, 1 µs link
    /// latency, 32 GB/s links, 256 kB eager threshold, one rank per node
    /// (§V-C).
    pub fn paper_machine() -> Self {
        NetModel {
            topology: Topology::paper_torus(),
            ranks_per_node: 1,
            system: Link::paper_system(),
            on_node: Link::default_on_node(),
            on_chip: Link::default_on_chip(),
            eager_threshold: 256 * 1024,
            send_overhead: SimTime::from_micros(1),
            recv_overhead: SimTime::from_micros(1),
            serialize_recv: false,
            faults: None,
            hop_table: None,
        }
    }

    /// Attach a link/switch fault table (see [`LinkStateTable`]);
    /// [`NetModel::p2p_at`] then routes around dead links and charges
    /// degraded-link bandwidth.
    pub fn with_faults(mut self, table: LinkStateTable) -> Self {
        self.faults = Some(Arc::new(table));
        self
    }

    /// Build the dense healthy-topology hop table when the topology
    /// qualifies (see [`crate::topology::HopTable::build`]). Idempotent;
    /// the simulation builder calls this once the topology is final, so
    /// per-message hop queries on small tori/meshes are a table load.
    pub fn precompute_hops(&mut self) {
        if self.hop_table.is_none() {
            self.hop_table = self.topology.hop_table().map(Arc::new);
        }
    }

    /// Healthy-topology hop count between two *nodes*: the precomputed
    /// table when present, the closed form otherwise.
    #[inline]
    pub fn node_hops(&self, a: usize, b: usize) -> u32 {
        match &self.hop_table {
            Some(t) => t.get(a, b),
            None => self.topology.hops(a, b),
        }
    }

    /// A small fully-connected machine, convenient for tests and
    /// quickstarts.
    pub fn small(nodes: usize) -> Self {
        NetModel {
            topology: Topology::FullyConnected { nodes },
            ..Self::paper_machine()
        }
    }

    /// The compute node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> usize {
        rank.idx() / self.ranks_per_node.max(1)
    }

    /// Total rank capacity of the machine.
    pub fn max_ranks(&self) -> usize {
        self.topology.nodes() * self.ranks_per_node.max(1)
    }

    /// The network class connecting two ranks.
    pub fn class_of(&self, a: Rank, b: Rank) -> NetClass {
        if self.node_of(a) == self.node_of(b) {
            NetClass::OnNode
        } else {
            NetClass::System
        }
    }

    /// Link parameters of a class.
    pub fn link(&self, class: NetClass) -> &Link {
        match class {
            NetClass::OnChip => &self.on_chip,
            NetClass::OnNode => &self.on_node,
            NetClass::System => &self.system,
        }
    }

    /// Failure-detection timeout between two ranks (paper §IV-C).
    pub fn timeout(&self, a: Rank, b: Rank) -> SimTime {
        self.link(self.class_of(a, b)).timeout
    }

    /// Point-to-point timing between two ranks for a payload of `bytes`.
    pub fn p2p(&self, src: Rank, dst: Rank, bytes: usize) -> P2pTiming {
        let class = self.class_of(src, dst);
        let link = self.link(class);
        let hops = match class {
            NetClass::System => self.node_hops(self.node_of(src), self.node_of(dst)),
            _ => 1,
        }
        .max(1);
        P2pTiming {
            latency: SimTime(link.latency.as_nanos().saturating_mul(hops as u64)),
            transfer: link.transfer_time(bytes),
            eager: bytes <= self.eager_threshold,
            class,
        }
    }

    /// Fault-aware point-to-point timing at virtual time `now`: like
    /// [`NetModel::p2p`], but system-class routes consult the live link
    /// state — dead links are routed around (hop-count inflation feeds
    /// the latency term), degraded links stretch the transfer time, and
    /// `None` is returned when the fault set partitions the network
    /// between the two ranks.
    ///
    /// Rerouting never shortens a route and degradation never raises
    /// bandwidth, so `min_latency()` remains a valid conservative
    /// lookahead under any fault schedule.
    pub fn p2p_at(&self, src: Rank, dst: Rank, bytes: usize, now: SimTime) -> Option<P2pRoute> {
        let base = self.p2p(src, dst, bytes);
        let clean = P2pRoute {
            timing: base,
            extra_hops: 0,
            degraded_extra: SimTime::ZERO,
        };
        let Some(table) = &self.faults else {
            return Some(clean);
        };
        if base.class != NetClass::System {
            return Some(clean); // intra-node traffic never crosses the fabric
        }
        let (a, b) = (self.node_of(src), self.node_of(dst));
        let route = table.route(a, b, now)?;
        let base_hops = self.node_hops(a, b).max(1);
        let hops = route.hops.max(1);
        let link = self.link(NetClass::System);
        let latency = SimTime(link.latency.as_nanos().saturating_mul(hops as u64));
        let transfer = if route.min_factor < 1.0 {
            Link {
                bandwidth_bps: link.bandwidth_bps * route.min_factor,
                ..*link
            }
            .transfer_time(bytes)
        } else {
            base.transfer
        };
        Some(P2pRoute {
            timing: P2pTiming {
                latency,
                transfer,
                eager: base.eager,
                class: base.class,
            },
            extra_hops: hops.saturating_sub(base_hops),
            degraded_extra: transfer - base.transfer,
        })
    }

    /// The minimum virtual delay of any cross-rank message: the
    /// conservative lookahead of the parallel engine.
    pub fn min_latency(&self) -> SimTime {
        let mut m = self.system.latency;
        if self.ranks_per_node > 1 {
            m = m.min(self.on_node.latency).min(self.on_chip.latency);
        }
        // Lookahead must be positive for the parallel engine; clamp to
        // 1 ns for degenerate zero-latency configurations.
        m.max(SimTime::from_nanos(1))
    }

    /// The minimum virtual delay of a message *crossing a shard
    /// boundary* when ranks are partitioned into contiguous blocks of
    /// `ranks_per_shard`. When shard blocks align with compute nodes
    /// (every node's ranks live in one shard), no on-node/on-chip
    /// message ever crosses shards, so the system-class latency — often
    /// orders of magnitude above [`min_latency`](Self::min_latency) —
    /// is a valid, much larger lookahead. Misaligned blocks fall back
    /// to the global minimum.
    ///
    /// Faults keep this conservative: rerouting never shortens a route
    /// and degradation never raises bandwidth, so per-window queries
    /// against a live [`LinkStateTable`] can only return delays at or
    /// above this bound.
    pub fn cross_shard_lookahead(&self, ranks_per_shard: usize) -> SimTime {
        let rpn = self.ranks_per_node.max(1);
        let aligned = match ranks_per_shard {
            0 => rpn == 1,
            n => n % rpn == 0,
        };
        if aligned {
            self.system.latency.max(SimTime::from_nanos(1))
        } else {
            self.min_latency()
        }
    }

    /// Validate model invariants the simulated MPI layer relies on.
    pub fn validate(&self, n_ranks: usize) -> Result<(), String> {
        if self.ranks_per_node == 0 {
            return Err("ranks_per_node must be > 0".into());
        }
        if n_ranks > self.max_ranks() {
            return Err(format!(
                "{} ranks exceed machine capacity {} ({} x {} ranks/node)",
                n_ranks,
                self.max_ranks(),
                self.topology,
                self.ranks_per_node
            ));
        }
        for (name, link) in [
            ("system", &self.system),
            ("on_node", &self.on_node),
            ("on_chip", &self.on_chip),
        ] {
            if link.timeout < self.min_latency() {
                return Err(format!(
                    "{name} timeout {} below minimum latency {} — failure \
                     notifications could not precede releases",
                    link.timeout,
                    self.min_latency()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_parameters() {
        let m = NetModel::paper_machine();
        assert_eq!(m.max_ranks(), 32_768);
        assert_eq!(m.eager_threshold, 262_144);
        m.validate(32_768).unwrap();
        assert!(m.validate(32_769).is_err());
    }

    #[test]
    fn p2p_latency_scales_with_hops() {
        let m = NetModel::paper_machine();
        let t = &m.topology;
        let a = Rank::new(t.node_at([0, 0, 0]));
        let b = Rank::new(t.node_at([1, 0, 0]));
        let c = Rank::new(t.node_at([5, 0, 0]));
        assert_eq!(m.p2p(a, b, 0).latency, SimTime::from_micros(1));
        assert_eq!(m.p2p(a, c, 0).latency, SimTime::from_micros(5));
    }

    #[test]
    fn transfer_time_uses_bandwidth() {
        let m = NetModel::paper_machine();
        let t = m.p2p(Rank(0), Rank(1), 32_000); // 32 kB at 32 GB/s = 1 µs
        assert_eq!(t.transfer, SimTime::from_micros(1));
        assert!(t.eager);
    }

    #[test]
    fn eager_threshold_selects_protocol() {
        let m = NetModel::paper_machine();
        assert!(m.p2p(Rank(0), Rank(1), 256 * 1024).eager);
        let r = m.p2p(Rank(0), Rank(1), 256 * 1024 + 1);
        assert!(!r.eager);
        assert_eq!(r.handshake(), SimTime::from_micros(2));
    }

    #[test]
    fn same_node_uses_on_node_class() {
        let mut m = NetModel::small(4);
        m.ranks_per_node = 4;
        assert_eq!(m.class_of(Rank(0), Rank(3)), NetClass::OnNode);
        assert_eq!(m.class_of(Rank(0), Rank(4)), NetClass::System);
        assert_eq!(m.timeout(Rank(0), Rank(3)), m.on_node.timeout);
    }

    #[test]
    fn min_latency_is_positive_lookahead() {
        let mut m = NetModel::paper_machine();
        assert_eq!(m.min_latency(), SimTime::from_micros(1));
        m.ranks_per_node = 2;
        assert_eq!(m.min_latency(), SimTime::from_nanos(40));
        m.system.latency = SimTime::ZERO;
        m.on_node.latency = SimTime::ZERO;
        m.on_chip.latency = SimTime::ZERO;
        assert_eq!(m.min_latency(), SimTime::from_nanos(1));
    }

    #[test]
    fn cross_shard_lookahead_exploits_node_alignment() {
        let m = NetModel::paper_machine(); // 1 rank/node
        assert_eq!(m.cross_shard_lookahead(7), m.system.latency);
        let mut m = NetModel::small(16);
        m.ranks_per_node = 4;
        // Aligned blocks: only system-class traffic crosses shards.
        assert_eq!(m.cross_shard_lookahead(4), m.system.latency);
        assert_eq!(m.cross_shard_lookahead(8), m.system.latency);
        // Misaligned blocks split a node across shards: fall back.
        assert_eq!(m.cross_shard_lookahead(3), m.min_latency());
        assert!(m.cross_shard_lookahead(4) > m.cross_shard_lookahead(3));
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let l = Link::paper_system();
        assert_eq!(l.transfer_time(0), SimTime::ZERO);
    }

    #[test]
    fn p2p_at_without_faults_matches_p2p() {
        let m = NetModel::paper_machine();
        let r = m
            .p2p_at(Rank(0), Rank(9), 4096, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(r.timing, m.p2p(Rank(0), Rank(9), 4096));
        assert_eq!(r.extra_hops, 0);
        assert_eq!(r.degraded_extra, SimTime::ZERO);
    }

    #[test]
    fn p2p_at_reroutes_and_degrades() {
        use crate::fault::{LinkFaultKind, LinkStateTable, NetFault};
        let mut m = NetModel::paper_machine();
        m.topology = Topology::Torus3d { dims: [4, 4, 4] };
        let t = m.topology.clone();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t);
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        let m = m.with_faults(tbl);
        let r = m
            .p2p_at(Rank(a as u32), Rank(b as u32), 0, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.extra_hops, 2, "1-hop route detours to 3 hops");
        assert_eq!(r.timing.latency, SimTime::from_micros(3));

        // Degraded link: transfer stretches by 1/factor.
        let mut m2 = NetModel::paper_machine();
        m2.topology = Topology::Torus3d { dims: [4, 4, 4] };
        let mut tbl = LinkStateTable::new(m2.topology.clone());
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.5),
            from: SimTime::ZERO,
            until: None,
        });
        let m2 = m2.with_faults(tbl);
        let base = m2.p2p(Rank(a as u32), Rank(b as u32), 32_000);
        let r = m2
            .p2p_at(Rank(a as u32), Rank(b as u32), 32_000, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.timing.transfer, SimTime::from_micros(2), "half bandwidth");
        assert_eq!(r.degraded_extra, r.timing.transfer - base.transfer);
    }

    #[test]
    fn p2p_at_detects_partition() {
        use crate::fault::{LinkFaultKind, LinkStateTable, NetFault};
        let mut m = NetModel::paper_machine();
        m.topology = Topology::Torus3d { dims: [4, 4, 4] };
        let victim = m.topology.node_at([2, 2, 2]);
        let mut tbl = LinkStateTable::new(m.topology.clone());
        tbl.add(NetFault {
            node: victim,
            dir: None,
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        let m = m.with_faults(tbl);
        assert!(m
            .p2p_at(Rank(0), Rank(victim as u32), 64, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn precomputed_hop_table_preserves_p2p() {
        let mut m = NetModel::paper_machine();
        m.topology = Topology::Torus3d { dims: [4, 4, 4] };
        let base: Vec<_> = (0..64u32).map(|b| m.p2p(Rank(0), Rank(b), 4096)).collect();
        m.precompute_hops();
        assert!(m.hop_table.is_some(), "small torus gets a table");
        for b in 0..64u32 {
            assert_eq!(m.p2p(Rank(0), Rank(b), 4096), base[b as usize]);
        }
        // The paper machine is too large for a dense table; the closed
        // form keeps serving.
        let mut big = NetModel::paper_machine();
        big.precompute_hops();
        assert!(big.hop_table.is_none());
    }

    #[test]
    fn self_message_has_min_one_hop_latency() {
        // A rank sending to itself still pays one on-node/system hop; the
        // simulated MPI layer relies on strictly positive delays.
        let m = NetModel::small(4);
        let t = m.p2p(Rank(2), Rank(2), 64);
        assert!(t.latency > SimTime::ZERO);
    }
}
