//! Link/switch fault state and fault-aware minimal routing.
//!
//! The paper's resilience facility stops at MPI *process* failures
//! (§IV); this module extends the fault surface to the interconnect
//! itself, following the *Fault Diagnosis* / *Reconfiguration* patterns
//! of the HPC resilience pattern language: a [`LinkStateTable`] records
//! which physical links are down or degraded over which virtual-time
//! windows, and [`LinkStateTable::route`] computes the minimal live
//! route around dead links — inflating the hop count, carrying the worst
//! bandwidth factor along the chosen path, and detecting true partitions.
//!
//! Link-level faults are modeled on the neighbor-addressable topologies
//! ([`Topology::Torus3d`] and [`Topology::Mesh3d`], via
//! [`Topology::torus_neighbors`]); on other topologies the table is
//! inert and routing falls back to the fault-free [`Topology::hops`].

use crate::topology::{NodeId, Topology};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use xsim_core::SimTime;

/// How a faulty network component behaves while the fault is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// The component is dead: no traffic passes.
    Down,
    /// The component passes traffic at `factor` × nominal bandwidth
    /// (`0 < factor ≤ 1`; non-positive factors are treated as down).
    Degraded(f64),
}

/// One fault on a link or switch, active over `[from, until)`
/// (`until = None` means permanent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFault {
    /// The node the fault is anchored at.
    pub node: NodeId,
    /// Direction index into [`Topology::torus_neighbors`] order
    /// (0..6 = +x, −x, +y, −y, +z, −z) selecting one link, or `None`
    /// for the node's switch — which takes down/degrades all six links.
    pub dir: Option<usize>,
    /// Down or degraded.
    pub kind: LinkFaultKind,
    /// Activation time.
    pub from: SimTime,
    /// Repair time (exclusive); `None` = never repaired.
    pub until: Option<SimTime>,
}

/// The live-ness result of routing between two nodes at some time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteInfo {
    /// Hop count of the minimal live route (≥ the fault-free hop count).
    pub hops: u32,
    /// Worst (minimum) bandwidth factor along the chosen route; `1.0`
    /// when no degraded link is crossed.
    pub min_factor: f64,
}

/// One fault window on a canonical (undirected) link.
#[derive(Debug, Clone, Copy)]
struct Window {
    kind: LinkFaultKind,
    from: SimTime,
    until: Option<SimTime>,
}

impl Window {
    fn active(&self, t: SimTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// Counter snapshot of the epoch-keyed route cache (see
/// [`LinkStateTable::route_cache_stats`]). The counts are
/// execution-shape data: under the parallel engine two shards can race
/// to fill the same entry, so hit/miss totals vary run to run even
/// though the cached *routes* are identical by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the BFS and filled an entry.
    pub misses: u64,
    /// Entries discarded when a shard hit its capacity bound.
    pub evictions: u64,
}

/// Lock shards of the route cache; keys spread by `src ^ dst`.
const CACHE_SHARDS: usize = 16;
/// Per-shard entry bound; a full shard is flushed wholesale (the cache
/// is a pure memo — dropping entries only costs recomputation).
const CACHE_SHARD_CAP: usize = 1 << 15;

/// One lock shard of the memo: `(src, dst, epoch) → BFS result` (`None`
/// = the fault set partitions the pair).
type RouteShard = Mutex<HashMap<(NodeId, NodeId, u32), Option<RouteInfo>>>;

/// Epoch-keyed `(src, dst, epoch) → route` memo. Within one fault epoch
/// the live link state is constant, so the BFS result is too — a cached
/// entry is byte-identical to a fresh computation and the memo cannot
/// perturb determinism. Shared across engine shards via the
/// `Arc<LinkStateTable>`, hence the internal locking; counters are
/// atomics so the hot path never takes more than one shard lock.
struct RouteCache {
    /// `XSIM_NET_ROUTE_CACHE=off|0|false` disables the memo (every
    /// query runs the BFS) — the escape hatch differential tests use.
    enabled: bool,
    shards: Vec<RouteShard>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl RouteCache {
    fn new() -> Self {
        let enabled = !matches!(
            std::env::var("XSIM_NET_ROUTE_CACHE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        RouteCache {
            enabled,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, src: NodeId, dst: NodeId) -> &RouteShard {
        &self.shards[(src ^ dst) % CACHE_SHARDS]
    }

    fn get(&self, src: NodeId, dst: NodeId, epoch: u32) -> Option<Option<RouteInfo>> {
        let hit = self
            .shard(src, dst)
            .lock()
            .expect("route cache lock")
            .get(&(src, dst, epoch))
            .copied();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, src: NodeId, dst: NodeId, epoch: u32, route: Option<RouteInfo>) {
        let mut shard = self.shard(src, dst).lock().expect("route cache lock");
        if shard.len() >= CACHE_SHARD_CAP {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        shard.insert((src, dst, epoch), route);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("route cache lock").clear();
        }
    }

    fn stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Clones start empty: the memo belongs to one run's shared table, not
/// to the fault schedule it memoizes.
impl Clone for RouteCache {
    fn clone(&self) -> Self {
        RouteCache {
            enabled: self.enabled,
            ..RouteCache::new()
        }
    }
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Fault state of every physical link of a topology, queryable at any
/// virtual time. The table is immutable during a run (it is built from
/// the fault schedule up front), so both engines see identical state —
/// determinism is preserved by construction.
///
/// Time is partitioned into **fault epochs**: the sorted, deduplicated
/// activation/repair instants of all windows split the timeline into
/// half-open intervals over which every link's state is constant. The
/// epoch index makes `any_active` a binary search instead of a window
/// scan, and keys the route cache so the BFS runs once per
/// `(src, dst, epoch)` instead of once per message.
#[derive(Debug, Clone)]
pub struct LinkStateTable {
    topo: Topology,
    /// Canonical undirected link `(min node, max node)` → fault windows.
    faults: HashMap<(NodeId, NodeId), Vec<Window>>,
    /// Earliest activation over all windows (fast reject before it).
    earliest: SimTime,
    /// Sorted, deduplicated fault state-transition instants. Epoch `e`
    /// covers `[epoch_bounds[e-1], epoch_bounds[e])` (epoch 0 is
    /// everything before the first transition).
    epoch_bounds: Vec<SimTime>,
    /// Per-epoch precomputed "any window active" flag
    /// (`epoch_active.len() == epoch_bounds.len() + 1`).
    epoch_active: Vec<bool>,
    /// Epoch-keyed route memo (see [`RouteCache`]).
    cache: RouteCache,
}

impl LinkStateTable {
    /// An empty (all-links-healthy) table over a topology.
    pub fn new(topo: Topology) -> Self {
        LinkStateTable {
            topo,
            faults: HashMap::new(),
            earliest: SimTime::MAX,
            epoch_bounds: Vec::new(),
            epoch_active: vec![false],
            cache: RouteCache::new(),
        }
    }

    /// The topology the table is defined over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of links carrying at least one fault window.
    pub fn faulty_links(&self) -> usize {
        self.faults.len()
    }

    /// Add a fault. Switch faults (`dir = None`) expand into faults on
    /// all of the node's links; directions that do not exist (mesh
    /// edges, non-neighbor topologies) are ignored.
    pub fn add(&mut self, f: NetFault) {
        let neighbors = self.topo.torus_neighbors(f.node);
        let dirs: Vec<usize> = match f.dir {
            Some(d) => vec![d],
            None => (0..6).collect(),
        };
        for d in dirs {
            let Some(Some(nb)) = neighbors.get(d).copied() else {
                continue;
            };
            let key = (f.node.min(nb), f.node.max(nb));
            self.faults.entry(key).or_default().push(Window {
                kind: f.kind,
                from: f.from,
                until: f.until,
            });
            self.earliest = self.earliest.min(f.from);
        }
        self.rebuild_epochs();
    }

    /// Recompute the epoch index after a schedule mutation. Tables are
    /// built up front and then queried, so this construction-time
    /// O(windows log windows) pass keeps every query O(log epochs).
    fn rebuild_epochs(&mut self) {
        let mut bounds: Vec<SimTime> = self
            .faults
            .values()
            .flat_map(|ws| ws.iter())
            .flat_map(|w| [Some(w.from), w.until].into_iter().flatten())
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        self.epoch_active = (0..=bounds.len())
            .map(|e| {
                // Link state is constant within an epoch, so one
                // representative instant decides the whole flag.
                let t = if e == 0 { SimTime::ZERO } else { bounds[e - 1] };
                self.faults
                    .values()
                    .any(|ws| ws.iter().any(|w| w.active(t)))
            })
            .collect();
        self.epoch_bounds = bounds;
        self.cache.clear();
    }

    /// The fault epoch containing `t`: the count of state transitions at
    /// or before `t`. Every scheduled link/switch activation or repair
    /// bumps the epoch; within one epoch the live link state — and
    /// therefore every route — is constant.
    pub fn epoch_at(&self, t: SimTime) -> u32 {
        self.epoch_bounds.partition_point(|b| *b <= t) as u32
    }

    /// Total number of fault epochs (`transitions + 1`).
    pub fn epoch_count(&self) -> usize {
        self.epoch_bounds.len() + 1
    }

    /// The `i`-th epoch boundary: the first instant of epoch `i + 1`.
    /// Panics if `i >= epoch_count() - 1`.
    pub fn epoch_bound(&self, i: usize) -> SimTime {
        self.epoch_bounds[i]
    }

    /// Hit/miss/eviction counters of the epoch-keyed route cache.
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        self.cache.stats()
    }

    /// Whether the route cache is consulted (`XSIM_NET_ROUTE_CACHE=off`
    /// at table construction disables it).
    pub fn route_cache_enabled(&self) -> bool {
        self.cache.enabled
    }

    /// Whether any fault window is active at `t` — a binary search over
    /// the precomputed epoch index.
    pub fn any_active(&self, t: SimTime) -> bool {
        if t < self.earliest {
            return false;
        }
        self.epoch_active[self.epoch_at(t) as usize]
    }

    /// Bandwidth factor of the link between adjacent nodes `a` and `b`
    /// at time `t`: `None` when the link is down, `Some(1.0)` when
    /// healthy, `Some(f < 1.0)` when degraded. Overlapping degradations
    /// combine to the worst factor.
    pub fn link_factor(&self, a: NodeId, b: NodeId, t: SimTime) -> Option<f64> {
        let Some(ws) = self.faults.get(&(a.min(b), a.max(b))) else {
            return Some(1.0);
        };
        let mut factor = 1.0f64;
        for w in ws.iter().filter(|w| w.active(t)) {
            match w.kind {
                LinkFaultKind::Down => return None,
                LinkFaultKind::Degraded(f) if f <= 0.0 => return None,
                LinkFaultKind::Degraded(f) => factor = factor.min(f),
            }
        }
        Some(factor)
    }

    /// Fault-aware minimal route between two nodes at time `t`: a BFS
    /// over live links (fixed neighbor order → deterministic route
    /// choice), returning `None` when the fault set partitions the
    /// network between `src` and `dst`.
    ///
    /// With no fault active at `t` — or on a topology without
    /// neighbor-level link addressing — this reduces to the fault-free
    /// [`Topology::hops`]. Otherwise the BFS result is memoized per
    /// `(src, dst, epoch)`: link state is constant within an epoch, so
    /// the cached route is exactly what a fresh BFS would return
    /// ([`route_uncached`](Self::route_uncached) is the bypassing oracle).
    pub fn route(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<RouteInfo> {
        if src == dst {
            return Some(RouteInfo {
                hops: 0,
                min_factor: 1.0,
            });
        }
        let addressable = matches!(
            self.topo,
            Topology::Torus3d { .. } | Topology::Mesh3d { .. }
        );
        if !addressable || !self.any_active(t) {
            return Some(RouteInfo {
                hops: self.topo.hops(src, dst),
                min_factor: 1.0,
            });
        }
        if !self.cache.enabled {
            return self.route_bfs(src, dst, t);
        }
        let epoch = self.epoch_at(t);
        if let Some(cached) = self.cache.get(src, dst, epoch) {
            return cached;
        }
        let fresh = self.route_bfs(src, dst, t);
        self.cache.insert(src, dst, epoch, fresh);
        fresh
    }

    /// [`route`](Self::route) with the memo bypassed: always recomputes
    /// the BFS. The differential oracle for cache-correctness tests.
    pub fn route_uncached(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<RouteInfo> {
        if src == dst {
            return Some(RouteInfo {
                hops: 0,
                min_factor: 1.0,
            });
        }
        let addressable = matches!(
            self.topo,
            Topology::Torus3d { .. } | Topology::Mesh3d { .. }
        );
        if !addressable || !self.any_active(t) {
            return Some(RouteInfo {
                hops: self.topo.hops(src, dst),
                min_factor: 1.0,
            });
        }
        self.route_bfs(src, dst, t)
    }

    /// The BFS body shared by the cached and uncached entry points.
    fn route_bfs(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<RouteInfo> {
        let n = self.topo.nodes();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![usize::MAX; n];
        dist[src] = 0;
        parent[src] = src;
        let mut q = VecDeque::new();
        q.push_back(src);
        'bfs: while let Some(u) = q.pop_front() {
            for v in self.topo.torus_neighbors(u).into_iter().flatten() {
                if dist[v] != u32::MAX || self.link_factor(u, v, t).is_none() {
                    continue;
                }
                dist[v] = dist[u] + 1;
                parent[v] = u;
                if v == dst {
                    break 'bfs;
                }
                q.push_back(v);
            }
        }
        if dist[dst] == u32::MAX {
            return None; // partition between src and dst
        }
        let mut min_factor = 1.0f64;
        let mut v = dst;
        while v != src {
            let u = parent[v];
            min_factor = min_factor.min(self.link_factor(u, v, t).unwrap_or(1.0));
            v = u;
        }
        Some(RouteInfo {
            hops: dist[dst],
            min_factor,
        })
    }

    /// Fault-aware hop count (`None` = partitioned) — the live-state
    /// counterpart of [`Topology::hops`].
    pub fn hops_at(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<u32> {
        self.route(src, dst, t).map(|r| r.hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus() -> Topology {
        Topology::Torus3d { dims: [4, 4, 4] }
    }

    fn down(node: NodeId, dir: usize) -> NetFault {
        NetFault {
            node,
            dir: Some(dir),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        }
    }

    #[test]
    fn healthy_table_matches_fault_free_hops() {
        let t = torus();
        let tbl = LinkStateTable::new(t.clone());
        for (a, b) in [(0, 1), (0, 63), (5, 40)] {
            assert_eq!(tbl.hops_at(a, b, SimTime::ZERO), Some(t.hops(a, b)));
        }
        assert!(!tbl.any_active(SimTime::MAX));
    }

    #[test]
    fn dead_link_inflates_hops() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(down(a, 0)); // +x link a→b
        let r = tbl.route(a, b, SimTime::ZERO).unwrap();
        assert!(r.hops > t.hops(a, b), "reroute must inflate hops");
        assert_eq!(r.hops, 3, "detour over an adjacent row: 3 hops");
        // The link is bidirectional: b→a is equally affected.
        assert_eq!(tbl.hops_at(b, a, SimTime::ZERO), Some(3));
    }

    #[test]
    fn transient_fault_heals() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::from_secs(1),
            until: Some(SimTime::from_secs(2)),
        });
        assert_eq!(tbl.hops_at(a, b, SimTime::ZERO), Some(1), "before");
        assert_eq!(tbl.hops_at(a, b, SimTime::from_secs(1)), Some(3), "during");
        assert_eq!(tbl.hops_at(a, b, SimTime::from_secs(2)), Some(1), "healed");
    }

    #[test]
    fn switch_fault_partitions_node() {
        let t = torus();
        let mut tbl = LinkStateTable::new(t.clone());
        let victim = t.node_at([2, 2, 2]);
        tbl.add(NetFault {
            node: victim,
            dir: None,
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        assert_eq!(tbl.route(0, victim, SimTime::ZERO), None, "isolated");
        // Other pairs still route (possibly around the dead switch).
        assert!(tbl.route(0, t.node_at([3, 3, 3]), SimTime::ZERO).is_some());
    }

    #[test]
    fn degraded_link_reports_worst_factor() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.25),
            from: SimTime::ZERO,
            until: None,
        });
        let r = tbl.route(a, b, SimTime::ZERO).unwrap();
        assert_eq!(r.hops, 1, "degraded links still route minimally");
        assert_eq!(r.min_factor, 0.25);
        // Non-positive factors behave as down.
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.0),
            from: SimTime::ZERO,
            until: None,
        });
        assert_eq!(tbl.link_factor(a, b, SimTime::ZERO), None);
    }

    #[test]
    fn epochs_partition_the_timeline_at_transitions() {
        let t = torus();
        let mut tbl = LinkStateTable::new(t);
        assert_eq!(tbl.epoch_count(), 1, "no faults: one eternal epoch");
        tbl.add(NetFault {
            node: 0,
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::from_secs(1),
            until: Some(SimTime::from_secs(2)),
        });
        tbl.add(NetFault {
            node: 0,
            dir: Some(2),
            kind: LinkFaultKind::Degraded(0.5),
            from: SimTime::from_secs(2),
            until: Some(SimTime::from_secs(3)),
        });
        // Transitions at 1 s, 2 s, 3 s → 4 epochs.
        assert_eq!(tbl.epoch_count(), 4);
        assert_eq!(tbl.epoch_at(SimTime::ZERO), 0);
        assert_eq!(tbl.epoch_at(SimTime::from_millis(999)), 0);
        assert_eq!(tbl.epoch_at(SimTime::from_secs(1)), 1);
        assert_eq!(tbl.epoch_at(SimTime::from_secs(2)), 2);
        assert_eq!(tbl.epoch_at(SimTime::from_millis(2500)), 2);
        assert_eq!(tbl.epoch_at(SimTime::from_secs(3)), 3);
        assert_eq!(tbl.epoch_at(SimTime::MAX), 3);
        assert!(!tbl.any_active(SimTime::ZERO));
        assert!(tbl.any_active(SimTime::from_secs(1)));
        assert!(tbl.any_active(SimTime::from_millis(2500)));
        assert!(!tbl.any_active(SimTime::from_secs(3)));
    }

    #[test]
    fn cached_routes_match_fresh_bfs_and_count_hits() {
        let t = torus();
        let mut tbl = LinkStateTable::new(t);
        tbl.add(NetFault {
            node: 0,
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::from_secs(1),
            until: Some(SimTime::from_secs(2)),
        });
        let times = [
            SimTime::ZERO,
            SimTime::from_millis(1500),
            SimTime::from_secs(2),
        ];
        for &at in &times {
            for (a, b) in [(0usize, 1usize), (0, 5), (3, 60)] {
                let fresh = tbl.route_uncached(a, b, at);
                assert_eq!(tbl.route(a, b, at), fresh, "first (filling) query");
                assert_eq!(tbl.route(a, b, at), fresh, "second (cached) query");
            }
        }
        if tbl.route_cache_enabled() {
            let s = tbl.route_cache_stats();
            assert!(s.hits > 0, "repeat queries hit: {s:?}");
            assert!(s.misses > 0, "first queries miss: {s:?}");
            assert_eq!(s.evictions, 0);
        }
    }

    #[test]
    fn adding_a_fault_invalidates_cached_routes() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(NetFault {
            node: t.node_at([0, 1, 0]),
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        assert_eq!(tbl.hops_at(a, b, SimTime::ZERO), Some(1), "warm the cache");
        tbl.add(down(a, 0)); // now the queried link itself dies
        assert_eq!(
            tbl.hops_at(a, b, SimTime::ZERO),
            Some(3),
            "stale entry flushed"
        );
    }

    #[test]
    fn non_addressable_topology_is_inert() {
        let t = Topology::FullyConnected { nodes: 8 };
        let mut tbl = LinkStateTable::new(t);
        tbl.add(down(0, 0)); // no neighbors → ignored
        assert_eq!(tbl.faulty_links(), 0);
        assert_eq!(tbl.hops_at(0, 5, SimTime::ZERO), Some(1));
    }
}
