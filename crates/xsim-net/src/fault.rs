//! Link/switch fault state and fault-aware minimal routing.
//!
//! The paper's resilience facility stops at MPI *process* failures
//! (§IV); this module extends the fault surface to the interconnect
//! itself, following the *Fault Diagnosis* / *Reconfiguration* patterns
//! of the HPC resilience pattern language: a [`LinkStateTable`] records
//! which physical links are down or degraded over which virtual-time
//! windows, and [`LinkStateTable::route`] computes the minimal live
//! route around dead links — inflating the hop count, carrying the worst
//! bandwidth factor along the chosen path, and detecting true partitions.
//!
//! Link-level faults are modeled on the neighbor-addressable topologies
//! ([`Topology::Torus3d`] and [`Topology::Mesh3d`], via
//! [`Topology::torus_neighbors`]); on other topologies the table is
//! inert and routing falls back to the fault-free [`Topology::hops`].

use crate::topology::{NodeId, Topology};
use std::collections::{HashMap, VecDeque};
use xsim_core::SimTime;

/// How a faulty network component behaves while the fault is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// The component is dead: no traffic passes.
    Down,
    /// The component passes traffic at `factor` × nominal bandwidth
    /// (`0 < factor ≤ 1`; non-positive factors are treated as down).
    Degraded(f64),
}

/// One fault on a link or switch, active over `[from, until)`
/// (`until = None` means permanent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFault {
    /// The node the fault is anchored at.
    pub node: NodeId,
    /// Direction index into [`Topology::torus_neighbors`] order
    /// (0..6 = +x, −x, +y, −y, +z, −z) selecting one link, or `None`
    /// for the node's switch — which takes down/degrades all six links.
    pub dir: Option<usize>,
    /// Down or degraded.
    pub kind: LinkFaultKind,
    /// Activation time.
    pub from: SimTime,
    /// Repair time (exclusive); `None` = never repaired.
    pub until: Option<SimTime>,
}

/// The live-ness result of routing between two nodes at some time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteInfo {
    /// Hop count of the minimal live route (≥ the fault-free hop count).
    pub hops: u32,
    /// Worst (minimum) bandwidth factor along the chosen route; `1.0`
    /// when no degraded link is crossed.
    pub min_factor: f64,
}

/// One fault window on a canonical (undirected) link.
#[derive(Debug, Clone, Copy)]
struct Window {
    kind: LinkFaultKind,
    from: SimTime,
    until: Option<SimTime>,
}

impl Window {
    fn active(&self, t: SimTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// Fault state of every physical link of a topology, queryable at any
/// virtual time. The table is immutable during a run (it is built from
/// the fault schedule up front), so both engines see identical state —
/// determinism is preserved by construction.
#[derive(Debug, Clone)]
pub struct LinkStateTable {
    topo: Topology,
    /// Canonical undirected link `(min node, max node)` → fault windows.
    faults: HashMap<(NodeId, NodeId), Vec<Window>>,
    /// Earliest activation over all windows (fast reject before it).
    earliest: SimTime,
}

impl LinkStateTable {
    /// An empty (all-links-healthy) table over a topology.
    pub fn new(topo: Topology) -> Self {
        LinkStateTable {
            topo,
            faults: HashMap::new(),
            earliest: SimTime::MAX,
        }
    }

    /// The topology the table is defined over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of links carrying at least one fault window.
    pub fn faulty_links(&self) -> usize {
        self.faults.len()
    }

    /// Add a fault. Switch faults (`dir = None`) expand into faults on
    /// all of the node's links; directions that do not exist (mesh
    /// edges, non-neighbor topologies) are ignored.
    pub fn add(&mut self, f: NetFault) {
        let neighbors = self.topo.torus_neighbors(f.node);
        let dirs: Vec<usize> = match f.dir {
            Some(d) => vec![d],
            None => (0..6).collect(),
        };
        for d in dirs {
            let Some(Some(nb)) = neighbors.get(d).copied() else {
                continue;
            };
            let key = (f.node.min(nb), f.node.max(nb));
            self.faults.entry(key).or_default().push(Window {
                kind: f.kind,
                from: f.from,
                until: f.until,
            });
            self.earliest = self.earliest.min(f.from);
        }
    }

    /// Whether any fault window is active at `t`.
    pub fn any_active(&self, t: SimTime) -> bool {
        if t < self.earliest {
            return false;
        }
        self.faults
            .values()
            .any(|ws| ws.iter().any(|w| w.active(t)))
    }

    /// Bandwidth factor of the link between adjacent nodes `a` and `b`
    /// at time `t`: `None` when the link is down, `Some(1.0)` when
    /// healthy, `Some(f < 1.0)` when degraded. Overlapping degradations
    /// combine to the worst factor.
    pub fn link_factor(&self, a: NodeId, b: NodeId, t: SimTime) -> Option<f64> {
        let Some(ws) = self.faults.get(&(a.min(b), a.max(b))) else {
            return Some(1.0);
        };
        let mut factor = 1.0f64;
        for w in ws.iter().filter(|w| w.active(t)) {
            match w.kind {
                LinkFaultKind::Down => return None,
                LinkFaultKind::Degraded(f) if f <= 0.0 => return None,
                LinkFaultKind::Degraded(f) => factor = factor.min(f),
            }
        }
        Some(factor)
    }

    /// Fault-aware minimal route between two nodes at time `t`: a BFS
    /// over live links (fixed neighbor order → deterministic route
    /// choice), returning `None` when the fault set partitions the
    /// network between `src` and `dst`.
    ///
    /// With no fault active at `t` — or on a topology without
    /// neighbor-level link addressing — this reduces to the fault-free
    /// [`Topology::hops`].
    pub fn route(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<RouteInfo> {
        if src == dst {
            return Some(RouteInfo {
                hops: 0,
                min_factor: 1.0,
            });
        }
        let addressable = matches!(
            self.topo,
            Topology::Torus3d { .. } | Topology::Mesh3d { .. }
        );
        if !addressable || !self.any_active(t) {
            return Some(RouteInfo {
                hops: self.topo.hops(src, dst),
                min_factor: 1.0,
            });
        }
        let n = self.topo.nodes();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![usize::MAX; n];
        dist[src] = 0;
        parent[src] = src;
        let mut q = VecDeque::new();
        q.push_back(src);
        'bfs: while let Some(u) = q.pop_front() {
            for v in self.topo.torus_neighbors(u).into_iter().flatten() {
                if dist[v] != u32::MAX || self.link_factor(u, v, t).is_none() {
                    continue;
                }
                dist[v] = dist[u] + 1;
                parent[v] = u;
                if v == dst {
                    break 'bfs;
                }
                q.push_back(v);
            }
        }
        if dist[dst] == u32::MAX {
            return None; // partition between src and dst
        }
        let mut min_factor = 1.0f64;
        let mut v = dst;
        while v != src {
            let u = parent[v];
            min_factor = min_factor.min(self.link_factor(u, v, t).unwrap_or(1.0));
            v = u;
        }
        Some(RouteInfo {
            hops: dist[dst],
            min_factor,
        })
    }

    /// Fault-aware hop count (`None` = partitioned) — the live-state
    /// counterpart of [`Topology::hops`].
    pub fn hops_at(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<u32> {
        self.route(src, dst, t).map(|r| r.hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus() -> Topology {
        Topology::Torus3d { dims: [4, 4, 4] }
    }

    fn down(node: NodeId, dir: usize) -> NetFault {
        NetFault {
            node,
            dir: Some(dir),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        }
    }

    #[test]
    fn healthy_table_matches_fault_free_hops() {
        let t = torus();
        let tbl = LinkStateTable::new(t.clone());
        for (a, b) in [(0, 1), (0, 63), (5, 40)] {
            assert_eq!(tbl.hops_at(a, b, SimTime::ZERO), Some(t.hops(a, b)));
        }
        assert!(!tbl.any_active(SimTime::MAX));
    }

    #[test]
    fn dead_link_inflates_hops() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(down(a, 0)); // +x link a→b
        let r = tbl.route(a, b, SimTime::ZERO).unwrap();
        assert!(r.hops > t.hops(a, b), "reroute must inflate hops");
        assert_eq!(r.hops, 3, "detour over an adjacent row: 3 hops");
        // The link is bidirectional: b→a is equally affected.
        assert_eq!(tbl.hops_at(b, a, SimTime::ZERO), Some(3));
    }

    #[test]
    fn transient_fault_heals() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::from_secs(1),
            until: Some(SimTime::from_secs(2)),
        });
        assert_eq!(tbl.hops_at(a, b, SimTime::ZERO), Some(1), "before");
        assert_eq!(tbl.hops_at(a, b, SimTime::from_secs(1)), Some(3), "during");
        assert_eq!(tbl.hops_at(a, b, SimTime::from_secs(2)), Some(1), "healed");
    }

    #[test]
    fn switch_fault_partitions_node() {
        let t = torus();
        let mut tbl = LinkStateTable::new(t.clone());
        let victim = t.node_at([2, 2, 2]);
        tbl.add(NetFault {
            node: victim,
            dir: None,
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        });
        assert_eq!(tbl.route(0, victim, SimTime::ZERO), None, "isolated");
        // Other pairs still route (possibly around the dead switch).
        assert!(tbl.route(0, t.node_at([3, 3, 3]), SimTime::ZERO).is_some());
    }

    #[test]
    fn degraded_link_reports_worst_factor() {
        let t = torus();
        let (a, b) = (t.node_at([0, 0, 0]), t.node_at([1, 0, 0]));
        let mut tbl = LinkStateTable::new(t.clone());
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.25),
            from: SimTime::ZERO,
            until: None,
        });
        let r = tbl.route(a, b, SimTime::ZERO).unwrap();
        assert_eq!(r.hops, 1, "degraded links still route minimally");
        assert_eq!(r.min_factor, 0.25);
        // Non-positive factors behave as down.
        tbl.add(NetFault {
            node: a,
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.0),
            from: SimTime::ZERO,
            until: None,
        });
        assert_eq!(tbl.link_factor(a, b, SimTime::ZERO), None);
    }

    #[test]
    fn non_addressable_topology_is_inert() {
        let t = Topology::FullyConnected { nodes: 8 };
        let mut tbl = LinkStateTable::new(t);
        tbl.add(down(0, 0)); // no neighbors → ignored
        assert_eq!(tbl.faulty_links(), 0);
        assert_eq!(tbl.hops_at(0, 5, SimTime::ZERO), Some(1));
    }
}
