//! # xsim-net — the network model
//!
//! xSim observes application performance "based on a processor and a
//! network model" (paper §II-A). This crate implements the network half:
//!
//! * [`Topology`] — the simulated interconnect shape. The paper's
//!   experiments use a 32×32×32 3-D wrapped torus (§V-C); meshes,
//!   hypercubes, stars and fully-connected fabrics are provided for
//!   co-design sweeps.
//! * [`Link`] — per-hop latency, bandwidth, and the **communication
//!   timeout** used by the simulated MPI process-failure detector: "each
//!   simulated network, such as the on-chip, on-node, and system-wide
//!   network, has its own network communication timeout" (§IV-C).
//! * [`NetModel`] — end-to-end point-to-point timing with **eager vs.
//!   rendezvous** protocol selection at a configurable threshold (the
//!   paper's configuration: 256 KiB, §V-C).
//! * [`LinkStateTable`] — link/switch fault state over
//!   [`Topology::torus_neighbors`] with fault-aware minimal routing:
//!   reroute around dead links (hop inflation), degraded-link bandwidth,
//!   and true-partition detection ([`NetModel::p2p_at`]).

pub mod fault;
pub mod model;
pub mod topology;

pub use fault::{LinkFaultKind, LinkStateTable, NetFault, RouteCacheStats, RouteInfo};
pub use model::{Link, NetClass, NetModel, P2pRoute, P2pTiming};
pub use topology::{HopTable, NodeId, Topology};
