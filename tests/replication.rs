//! Replication-based resilience, end to end: replica teams with
//! heartbeat failure detection, transparent leader failover, and the
//! PartRePer-style partial mode falling back to ULFM shrink for
//! unprotected ranks.
//!
//! Three contracts:
//!
//! 1. Killing a logical rank's *leader* mid-run is invisible to the
//!    application: the run finishes, the surviving replica serves the
//!    logical rank, and the completion digest is byte-identical to the
//!    failure-free reference.
//! 2. A replicated run is deterministic across engines — the metrics
//!    snapshot is byte-identical between the sequential engine and the
//!    parallel engine at 1 and 4 workers.
//! 3. Partial replication protects exactly its critical set: a shadow
//!    death is absorbed, while an unprotected rank's death surfaces
//!    `MPI_ERR_PROC_FAILED` and the survivors recover with
//!    ULFM revoke + shrink.

use bytes::Bytes;
use xsim::apps::heat3d::{ComputeMode, HeatConfig};
use xsim::apps::heat3d_rep::{self, RepHeatConfig};
use xsim::obs::ids;
use xsim::prelude::*;

fn small_rep() -> RepHeatConfig {
    RepHeatConfig {
        heat: HeatConfig {
            mode: ComputeMode::Modeled,
            ..HeatConfig::small()
        },
        scheme: ProtectionScheme::Replication { degree: 2 },
        hb: HeartbeatConfig::default(),
        ckpt: false,
    }
}

fn rep_builder(cfg: &RepHeatConfig, workers: usize, engine: EngineKind) -> SimBuilder {
    SimBuilder::new(cfg.physical_size())
        .net(NetModel::small(cfg.physical_size()))
        .fs_model(FsModel::typical_pfs())
        // Align pending-operation failure errors with the heartbeat
        // protocol's detection bound.
        .detector(cfg.hb.detector())
        .workers(workers)
        .engine(engine)
        .metrics(true)
}

#[test]
fn leader_death_fails_over_transparently() {
    let cfg = small_rep();
    let marker = cfg.done_marker();

    // Failure-free reference digest.
    let store_ref = FsStore::new();
    let reference = rep_builder(&cfg, 1, EngineKind::Sequential)
        .fs_store(store_ref.clone())
        .run(heat3d_rep::program(cfg.clone()))
        .expect("reference run");
    assert_eq!(reference.sim.exit, ExitKind::Completed);
    let ref_digest = store_ref
        .get(&marker)
        .expect("marker written")
        .bytes()
        .clone();

    // Kill the *leader* of logical rank 1 (physical rank 1 under the
    // primaries-first layout) halfway through the solve — mid halo
    // traffic, checkpoint-free, so only the replica keeps the rank alive.
    let tof = reference.exit_time().scale(0.5);
    let store = FsStore::new();
    let report = rep_builder(&cfg, 1, EngineKind::Sequential)
        .fs_store(store.clone())
        .inject_failure(1, tof)
        .run(heat3d_rep::program(cfg.clone()))
        .expect("failover run");

    // Dead teammates make the exit FailedOnly, never Aborted — and no
    // VP saw an application-visible error (that would be Aborted or a
    // propagated Err).
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank, Rank::new(1));

    // The application's result is unchanged: same completion digest.
    let digest = store.get(&marker).expect("marker written").bytes().clone();
    assert_eq!(
        digest, ref_digest,
        "failover changed the application result"
    );

    // The survivors actually failed over (metrics prove the path ran).
    let set = &report.metrics.as_ref().expect("metrics").set;
    assert!(set.value(ids::REP_FAILOVERS) >= 1, "no failover recorded");
    assert!(set.value(ids::REP_DETECTIONS) >= 1, "no detection recorded");
    assert!(set.value(ids::REP_HEARTBEATS) >= 1, "no heartbeats metered");
}

#[test]
fn replicated_run_is_engine_invariant() {
    // Checkpoints on: the every-replica idempotent write/delete protocol
    // is part of the surface that must stay deterministic.
    let mut cfg = small_rep();
    cfg.ckpt = true;

    let run = |workers: usize, engine: EngineKind| {
        rep_builder(&cfg, workers, engine)
            .run(heat3d_rep::program(cfg.clone()))
            .expect("replicated run")
    };
    let snapshot = |r: &RunReport| r.metrics.as_ref().expect("metrics").to_json(None);

    let seq = run(1, EngineKind::Sequential);
    assert_eq!(seq.sim.exit, ExitKind::Completed);
    let reference = snapshot(&seq);
    for (workers, label) in [(1usize, "parallel(1)"), (4, "parallel(4)")] {
        let par = run(workers, EngineKind::Parallel);
        assert_eq!(
            snapshot(&par),
            reference,
            "{label}: metrics snapshot diverged from sequential"
        );
        assert_eq!(
            par.sim.final_clocks, seq.sim.final_clocks,
            "{label}: clocks"
        );
        assert_eq!(par.sim.exit, seq.sim.exit, "{label}: exit kind");
        assert_eq!(
            par.sim.events_processed, seq.sim.events_processed,
            "{label}: events"
        );
    }
}

#[test]
fn partial_replication_shrinks_after_unprotected_death() {
    // 4 logical ranks, critical = {0, 1} at degree 2: physical layout is
    // primaries 0..3 plus shadows 4 (of 0) and 5 (of 1).
    let hb = HeartbeatConfig::default();
    let map = ReplicaMap::partial(4, 2, [0, 1].into_iter().collect()).expect("layout");
    assert_eq!(map.physical_size(), 6);

    let report = SimBuilder::new(6)
        .net(NetModel::small(6))
        .detector(hb.detector())
        .errhandler(ErrHandler::Return)
        // Shadow of logical 0 dies first: absorbed. Unprotected logical
        // 3 dies later: must surface.
        .inject_failure(4, SimTime::from_millis(20))
        .inject_failure(3, SimTime::from_millis(50))
        .run_app(move |mpi| {
            let map = map.clone();
            async move {
                let phys = mpi.rank;
                let mut rep = Replicated::attach(mpi, map, hb)?;
                rep.barrier().await?; // everyone alive, protocol warm

                if phys == 4 || phys == 3 {
                    // Doomed: idle until the injected death.
                    rep.mpi.sleep(SimTime::from_secs(60)).await;
                    rep.finalize();
                    return Ok(());
                }

                // Phase 1 — after the shadow's death: traffic with the
                // protected logical rank 0 still succeeds (the team
                // absorbs its replica's loss; dead copies are forgiven).
                rep.mpi.sleep(SimTime::from_millis(30)).await;
                match rep.logical_rank {
                    0 => {
                        let ping = rep.recv(1, 7).await?;
                        assert_eq!(&ping[..], b"ping");
                        rep.send(1, 8, Bytes::from_static(b"pong")).await?;
                    }
                    1 => {
                        rep.send(0, 7, Bytes::from_static(b"ping")).await?;
                        let pong = rep.recv(0, 8).await?;
                        assert_eq!(&pong[..], b"pong");
                    }
                    _ => {}
                }

                // Phase 2 — the unprotected rank is dead: a global
                // collective must surface the failure to someone, and
                // the survivors run the ULFM recovery protocol.
                let err = match rep.barrier().await {
                    Ok(()) => panic!("barrier succeeded past a dead unprotected rank"),
                    Err(e) => e,
                };
                let w = rep.world();
                match err {
                    MpiError::ProcFailed { .. } => {
                        // Witness of the death: revoke so the teams
                        // blocked inside the barrier drain out.
                        rep.mpi.comm_revoke(w)?;
                    }
                    MpiError::Revoked => {}
                    other => panic!("unexpected barrier error: {other:?}"),
                }
                let shrunk = rep.mpi.comm_shrink(w).await?;
                // 6 physical ranks minus the dead shadow and the dead
                // unprotected primary.
                assert_eq!(rep.mpi.comm_size(shrunk)?, 4);
                rep.mpi.barrier(shrunk).await?;
                rep.finalize();
                Ok(())
            }
        })
        .expect("partial run");

    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    assert_eq!(
        report.sim.failures.len(),
        2,
        "both injected deaths activated"
    );
}
