//! Cross-engine differential suite: every workload must produce
//! *byte-identical* deterministic output across the sequential engine,
//! the parallel engine pinned to one worker (full window machinery, no
//! concurrency), and the parallel engine with real thread counts.
//!
//! The comparison surface is `ObsReport::to_json(None)` — the metrics
//! snapshot without the engine section — plus the engine-independent
//! scalars of `SimReport` (final clocks, exit kind, event and context
//! switch totals, activated failures). Execution-shape data (per-shard
//! stats, window/steal/barrier profile, wall clock) legitimately varies
//! with the worker count and is excluded by construction.

use bytes::Bytes;
use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::jacobi2d::{self, JacobiConfig};
use xsim::prelude::*;

/// The deterministic metrics snapshot (no engine section).
fn snapshot(report: &RunReport) -> String {
    report
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .to_json(None)
}

/// The engine legs every scenario must agree across: sequential,
/// parallel with one worker, and parallel with 4 and 8 workers.
const LEGS: [(usize, EngineKind, &str); 3] = [
    (1, EngineKind::Parallel, "parallel(1)"),
    (4, EngineKind::Auto, "parallel(4)"),
    (8, EngineKind::Auto, "parallel(8)"),
];

/// Run `run` for every engine leg and assert that each one reproduces
/// the sequential reference byte-for-byte.
fn assert_engine_invariant(name: &str, run: impl Fn(usize, EngineKind) -> RunReport) {
    let seq = run(1, EngineKind::Sequential);
    let reference = snapshot(&seq);
    for (workers, kind, label) in LEGS {
        let par = run(workers, kind);
        assert_eq!(
            snapshot(&par),
            reference,
            "{name}/{label}: metrics snapshot diverged from sequential"
        );
        assert_eq!(
            par.sim.final_clocks, seq.sim.final_clocks,
            "{name}/{label}: final clocks diverged"
        );
        assert_eq!(par.sim.exit, seq.sim.exit, "{name}/{label}: exit kind");
        assert_eq!(
            par.sim.events_processed, seq.sim.events_processed,
            "{name}/{label}: events processed"
        );
        assert_eq!(
            par.sim.context_switches, seq.sim.context_switches,
            "{name}/{label}: context switches"
        );
        assert_eq!(
            par.sim.failures, seq.sim.failures,
            "{name}/{label}: activated failures"
        );
    }
}

/// The paper's 3-D heat application with checkpoints to a modeled PFS:
/// compute + halo exchange + collectives + file I/O, all under one
/// differential run.
#[test]
fn heat3d_is_engine_invariant() {
    let cfg = HeatConfig::small();
    assert_engine_invariant("heat3d", |workers, engine| {
        SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .fs_model(FsModel::typical_pfs())
            .workers(workers)
            .engine(engine)
            .metrics(true)
            .run(heat3d::program(cfg.clone()))
            .expect("heat3d run")
    });
}

/// Jacobi on a multi-rank-per-node machine with a raised notification
/// delay: shard blocks align with compute nodes for some worker counts
/// and not for others, so the adaptive lookahead provider picks
/// *different* window bounds per leg — results must not move.
#[test]
fn jacobi2d_is_engine_invariant_under_adaptive_lookahead() {
    let cfg = JacobiConfig::small();
    assert_engine_invariant("jacobi2d", |workers, engine| {
        let mut net = NetModel::small(4);
        net.ranks_per_node = 4; // 16 ranks on 4 nodes
        SimBuilder::new(16)
            .net(net)
            .workers(workers)
            .engine(engine)
            .notify_delay(SimTime::from_micros(50))
            .metrics(true)
            .run(jacobi2d::program(cfg.clone(), None))
            .expect("jacobi2d run")
    });
}

/// The lossy-ring workload: every transmission consults the
/// deterministic drop/corrupt RNG, so any reordering of event
/// *processing* across threads would immediately skew the drop
/// sequence and show up in the retransmission counters.
#[test]
fn lossy_ring_is_engine_invariant() {
    assert_engine_invariant("lossy-ring", |workers, engine| {
        SimBuilder::new(8)
            .net(NetModel::small(8))
            .seed(7)
            .workers(workers)
            .engine(engine)
            .metrics(true)
            .lossy(LossyTransport {
                drop_prob: 0.3,
                corrupt_prob: 0.05,
                ..LossyTransport::default()
            })
            .run_app(|mpi| async move {
                let w = mpi.world();
                for round in 0..4u32 {
                    let dst = (mpi.rank + 1) % mpi.size;
                    let src = (mpi.rank + mpi.size - 1) % mpi.size;
                    let got = mpi
                        .sendrecv(
                            w,
                            dst,
                            round,
                            Bytes::from(vec![round as u8; 512]),
                            Some(src),
                            Some(round),
                        )
                        .await?;
                    assert_eq!(got.data.len(), 512);
                }
                mpi.finalize();
                Ok(())
            })
            .expect("lossy ring run")
    });
}

/// Environment-driven fault schedules (`XSIM_FAILURES` +
/// `XSIM_NET_FAULTS`) parsed exactly as an operator would supply them,
/// then injected through the builder: process failures activate and a
/// degraded link stretches transfers identically on every engine.
#[test]
fn env_fault_schedules_are_engine_invariant() {
    // Parse through the documented env-var path, then clear the vars
    // immediately so no other test observes them.
    std::env::set_var("XSIM_FAILURES", "2:0.5");
    std::env::set_var("XSIM_NET_FAULTS", "rank:5:1.5,link:0:+x:0:degraded:0.25");
    let failures = FailureSchedule::from_env()
        .expect("parse XSIM_FAILURES")
        .expect("XSIM_FAILURES set");
    let faults = FaultSchedule::from_env()
        .expect("parse XSIM_NET_FAULTS")
        .expect("XSIM_NET_FAULTS set");
    std::env::remove_var("XSIM_FAILURES");
    std::env::remove_var("XSIM_NET_FAULTS");

    assert_engine_invariant("env-faults", |workers, engine| {
        let mut net = NetModel::paper_machine();
        net.topology = Topology::Torus3d { dims: [2, 2, 2] };
        SimBuilder::new(8)
            .net(net)
            .workers(workers)
            .engine(engine)
            .errhandler(ErrHandler::Return)
            .metrics(true)
            .inject_failures(failures.iter().chain(faults.rank_failures().iter()))
            .net_faults(faults.net_faults())
            .run_app(|mpi| async move {
                let w = mpi.world();
                // One ring exchange across the faulted torus, then idle
                // past both failure times.
                let dst = (mpi.rank + 1) % mpi.size;
                let src = (mpi.rank + mpi.size - 1) % mpi.size;
                let got = mpi
                    .sendrecv(w, dst, 0, Bytes::from(vec![0u8; 1024]), Some(src), Some(0))
                    .await?;
                assert_eq!(got.data.len(), 1024);
                mpi.sleep(SimTime::from_secs(2)).await;
                mpi.finalize();
                Ok(())
            })
            .expect("env fault run")
    });

    // The schedules really activated: both scheduled ranks died.
    let report = SimBuilder::new(8)
        .net({
            let mut net = NetModel::paper_machine();
            net.topology = Topology::Torus3d { dims: [2, 2, 2] };
            net
        })
        .errhandler(ErrHandler::Return)
        .inject_failures(failures.iter().chain(faults.rank_failures().iter()))
        .net_faults(faults.net_faults())
        .run_app(|mpi| async move {
            mpi.sleep(SimTime::from_secs(2)).await;
            mpi.finalize();
            Ok(())
        })
        .expect("activation check run");
    let mut failed: Vec<usize> = report.sim.failures.iter().map(|f| f.rank.idx()).collect();
    failed.sort_unstable();
    assert_eq!(failed, vec![2, 5], "both env-scheduled failures activate");
}
