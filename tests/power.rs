//! Energy-accounting integration tests (paper §III-A item (4): "model
//! the power consumption of the entire simulated system").

use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::ComputeMode;
use xsim::prelude::*;
use xsim_proc::PowerModel;

fn power() -> PowerModel {
    PowerModel {
        active_watts: 200.0,
        idle_watts: 100.0,
        joules_per_message: 0.0,
        joules_per_byte: 0.0,
    }
}

#[test]
fn compute_only_run_is_fully_busy() {
    let report = SimBuilder::new(4)
        .net(NetModel::small(4))
        .power(power())
        .run_app(|mpi| async move {
            mpi.compute(Work::native_time(SimTime::from_secs(10))).await;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let p = report.power.expect("power model enabled");
    assert!(
        (p.busy_fraction - 1.0).abs() < 1e-9,
        "busy fraction {} should be 1",
        p.busy_fraction
    );
    // 4 ranks × 10 s × 200 W.
    assert!((p.total_joules - 8000.0).abs() < 1e-6);
    assert_eq!(p.idle_joules, 0.0);
}

#[test]
fn waiting_ranks_draw_idle_power() {
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .power(power())
        .run_app(|mpi| async move {
            if mpi.rank == 0 {
                mpi.compute(Work::native_time(SimTime::from_secs(10))).await;
                mpi.send(mpi.world(), 1, 0, bytes::Bytes::new()).await?;
            } else {
                // Blocked waiting ~10 s: idle.
                mpi.recv(mpi.world(), Some(0), Some(0)).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let p = report.power.expect("power enabled");
    // Rank 0 busy 10 s (2000 J); rank 1 idle ~10 s (~1000 J).
    assert!(p.busy_joules >= 2000.0 - 1.0 && p.busy_joules <= 2000.0 + 1.0);
    assert!(p.idle_joules > 900.0 && p.idle_joules < 1100.0);
    assert!(p.busy_fraction > 0.4 && p.busy_fraction < 0.6);
}

#[test]
fn power_report_absent_without_model() {
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .run_app(|mpi| async move {
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert!(report.power.is_none());
}

#[test]
fn network_energy_counts_traffic() {
    let model = PowerModel {
        active_watts: 0.0,
        idle_watts: 0.0,
        joules_per_message: 1.0,
        joules_per_byte: 0.5,
    };
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .power(model)
        .run_app(|mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                mpi.send(w, 1, 0, bytes::Bytes::from(vec![0u8; 100]))
                    .await?;
            } else {
                mpi.recv(w, Some(0), Some(0)).await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let p = report.power.unwrap();
    // 1 message, 100 bytes: 1.0 + 50.0 J.
    assert!((p.network_joules - 51.0).abs() < 1e-9);
    assert_eq!(p.total_joules, p.network_joules);
}

#[test]
fn failures_cost_energy_through_recomputation() {
    // The performance/resilience/power trade-off: a failure/restart
    // cycle recomputes lost work, which costs energy.
    let mut cfg = HeatConfig::small();
    cfg.iterations = 40;
    cfg.mode = ComputeMode::Modeled;
    cfg.per_point = SimTime::from_micros(50);
    let n = cfg.n_ranks();

    let clean = SimBuilder::new(n)
        .net(NetModel::small(n))
        .power(PowerModel::typical_node())
        .run(heat3d::program(cfg.clone()))
        .unwrap();
    let e_clean = clean.power.unwrap().total_joules;

    // One failure + one restart via the orchestrator.
    let store = FsStore::new();
    let orch = Orchestrator::new(FailureModel::None, 1, CheckpointManager::new(&cfg.prefix));
    let program = heat3d::program(cfg.clone());
    let faulty = SimBuilder::new(n)
        .net(NetModel::small(n))
        .fs_store(store.clone())
        .power(PowerModel::typical_node())
        .inject_failure(3, clean.exit_time().scale(0.5))
        .run(program.clone())
        .unwrap();
    assert_eq!(faulty.sim.exit, ExitKind::Aborted);
    xsim_ckpt::write_exit_time(&store, faulty.exit_time());
    orch.manager.cleanup_incomplete(&store, n as u32);
    let rerun = orch
        .run_to_completion(store, program, n, || {
            SimBuilder::new(n)
                .net(NetModel::small(n))
                .power(PowerModel::typical_node())
        })
        .unwrap();
    assert!(rerun.completed);
    let e_faulty: f64 = faulty.power.unwrap().total_joules
        + rerun
            .runs
            .iter()
            .map(|r| r.power.unwrap().total_joules)
            .sum::<f64>();
    assert!(
        e_faulty > e_clean * 1.1,
        "failure/restart must cost extra energy: {e_faulty} vs {e_clean}"
    );
}
