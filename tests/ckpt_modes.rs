//! Restore-equivalence differential suite for the checkpoint modes over
//! the striped PFS model. For every mode (full, aggregated, buddy,
//! incremental) the suite kills a rank mid-run, restarts to completion,
//! and asserts:
//!
//! * **Engine invariance** (the `engine_diff` bar): every run of the
//!   failure/restart campaign produces a byte-identical
//!   `ObsReport::to_json(None)` snapshot — and identical
//!   engine-independent scalars — on the sequential engine, the parallel
//!   engine pinned to one worker, and the parallel engine with real
//!   thread counts.
//! * **Restore equivalence**: the final application state (the grid
//!   resolved from the store, replaying diff chains / unwrapping
//!   containers as the mode requires) is identical across all four
//!   modes and identical to the uninterrupted run's final state.
//!
//! Also pins two mode-independent regressions: the Table II
//! `paper_builder` still models free checkpoint I/O, and the Daly
//! predicted-vs-actual overhead helper stays honest.

use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::ComputeMode;
use xsim::mpi::CkptMode;
use xsim::prelude::*;
use xsim_bench::paper_builder;
use xsim_ckpt::{compare_overhead, resolve_latest, write_exit_time};

/// I/O nodes of the simulated striped PFS (2 nodes for 8 client ranks →
/// real cross-rank contention on every checkpoint).
const IO_NODES: u32 = 2;

fn modes() -> [(CkptMode, &'static str); 4] {
    [
        (CkptMode::Full, "full"),
        (CkptMode::Aggregated { group: 4 }, "agg:4"),
        (CkptMode::Buddy, "buddy"),
        (CkptMode::Incremental { full_every: 2 }, "incr:2"),
    ]
}

fn cfg_for(mode: CkptMode) -> HeatConfig {
    let mut cfg = HeatConfig::small(); // 8³ grid, 2³ ranks, real compute
    cfg.ckpt_mode = mode;
    cfg
}

fn builder(n: usize, workers: usize, engine: EngineKind) -> SimBuilder {
    SimBuilder::new(n)
        .net(NetModel::small(n))
        .fs_model(FsModel::striped(IO_NODES))
        .workers(workers)
        .engine(engine)
        .metrics(true)
}

/// The deterministic metrics snapshot (no engine section).
fn snapshot(report: &RunReport) -> String {
    report
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .to_json(None)
}

/// Engine-independent scalars of one run.
fn scalars(report: &RunReport) -> (ExitKind, Vec<SimTime>, u64, usize) {
    (
        report.sim.exit,
        report.sim.final_clocks.clone(),
        report.sim.events_processed,
        report.sim.failures.len(),
    )
}

/// Every rank's final grid bytes, resolved offline from the store
/// through the mode's own layout (container sections, buddy memory
/// copies, diff-chain replay).
fn final_state(store: &FsStore, cfg: &HeatConfig) -> Vec<Vec<u8>> {
    let mgr = CheckpointManager::new(&cfg.prefix);
    let n = cfg.n_ranks() as u32;
    (0..n)
        .map(|rank| {
            let resolved = resolve_latest(store, &mgr, cfg.ckpt_mode, rank, n)
                .unwrap_or_else(|| panic!("rank {rank}: no restorable checkpoint"));
            assert_eq!(
                resolved.generation, cfg.iterations,
                "rank {rank}: final generation"
            );
            assert_eq!(resolved.ckpt.iteration, cfg.iterations);
            resolved
                .ckpt
                .section("grid")
                .expect("grid section")
                .to_vec()
        })
        .collect()
}

/// One kill-mid-run → restore → run-to-completion campaign.
struct Campaign {
    /// Per-run metrics snapshots, execution order (aborted run first).
    snapshots: Vec<String>,
    /// Per-run engine-independent scalars.
    scalars: Vec<(ExitKind, Vec<SimTime>, u64, usize)>,
    /// Final virtual completion time.
    finish_time: SimTime,
    /// Final per-rank grid bytes.
    state: Vec<Vec<u8>>,
}

fn run_campaign(mode: CkptMode, kill_at: SimTime, workers: usize, engine: EngineKind) -> Campaign {
    let cfg = cfg_for(mode);
    let n = cfg.n_ranks();
    let store = FsStore::new();
    let program = heat3d::program(cfg.clone());

    // Run 0: rank 3 dies mid-run.
    let first = builder(n, workers, engine)
        .fs_store(store.clone())
        .inject_failure(3, kill_at)
        .run(program.clone())
        .expect("aborted run");
    assert_eq!(first.sim.exit, ExitKind::Aborted, "victim must die mid-run");
    let failed: Vec<u32> = first.sim.failures.iter().map(|f| f.rank.0).collect();
    write_exit_time(&store, first.exit_time());
    CheckpointManager::new(&cfg.prefix).cleanup_between_runs(&store, n as u32, mode, &failed);

    // Restart to completion (no further failures), continuous timeline.
    let mut orch = Orchestrator::new(FailureModel::None, 1, CheckpointManager::new(&cfg.prefix));
    orch.mode = mode;
    let result = orch
        .run_to_completion(store.clone(), program, n, || builder(n, workers, engine))
        .expect("restart campaign");
    assert!(result.completed, "campaign did not complete");
    assert!(result.finish_time > kill_at);

    let mut runs = vec![first];
    runs.extend(result.runs);
    Campaign {
        snapshots: runs.iter().map(snapshot).collect(),
        scalars: runs.iter().map(scalars).collect(),
        finish_time: result.finish_time,
        state: final_state(&store, &cfg),
    }
}

/// The parallel legs every scenario must reproduce byte-for-byte.
const LEGS: [(usize, EngineKind, &str); 2] = [
    (1, EngineKind::Parallel, "parallel(1)"),
    (4, EngineKind::Auto, "parallel(4)"),
];

#[test]
fn modes_are_engine_invariant_and_restore_equivalent() {
    let mut cross_mode: Option<Vec<Vec<u8>>> = None;
    for (mode, label) in modes() {
        let cfg = cfg_for(mode);
        let n = cfg.n_ranks();

        // Uninterrupted reference run under the same striped PFS.
        let clean_builder = builder(n, 1, EngineKind::Sequential);
        let clean_store = clean_builder.store();
        let clean = clean_builder
            .run(heat3d::program(cfg.clone()))
            .expect("clean run");
        assert_eq!(clean.sim.exit, ExitKind::Completed, "{label}: clean run");
        let clean_state = final_state(&clean_store, &cfg);
        let kill_at = clean.exit_time().scale(0.45);

        // Sequential campaign is the per-mode reference.
        let seq = run_campaign(mode, kill_at, 1, EngineKind::Sequential);
        assert!(seq.snapshots.len() >= 2, "{label}: restart happened");
        assert_eq!(
            seq.state, clean_state,
            "{label}: restored final state differs from the uninterrupted run"
        );
        assert!(
            seq.finish_time > clean.exit_time(),
            "{label}: lost progress was recomputed ({} vs {})",
            seq.finish_time,
            clean.exit_time()
        );

        // Engine invariance: every leg reproduces the sequential
        // campaign byte-for-byte, run by run.
        for (workers, engine, leg) in LEGS {
            let par = run_campaign(mode, kill_at, workers, engine);
            assert_eq!(
                par.snapshots, seq.snapshots,
                "{label}/{leg}: metrics snapshots diverged from sequential"
            );
            assert_eq!(par.scalars, seq.scalars, "{label}/{leg}: run scalars");
            assert_eq!(par.finish_time, seq.finish_time, "{label}/{leg}: E2");
            assert_eq!(par.state, seq.state, "{label}/{leg}: final state");
        }

        // Restore equivalence across modes: all four land on the exact
        // same physics.
        match &cross_mode {
            None => cross_mode = Some(clean_state),
            Some(reference) => assert_eq!(
                &clean_state, reference,
                "{label}: final state differs across checkpoint modes"
            ),
        }
    }
}

/// The aggregated container really coalesces the PFS traffic: per
/// generation the PFS sees one file per group instead of one per rank,
/// and member state travels over the simulated network.
#[test]
fn aggregated_mode_coalesces_pfs_files() {
    let mode = CkptMode::Aggregated { group: 4 };
    let cfg = cfg_for(mode);
    let n = cfg.n_ranks();
    let b = builder(n, 1, EngineKind::Sequential);
    let store = b.store();
    let report = b.run(heat3d::program(cfg.clone())).expect("agg run");
    assert_eq!(report.sim.exit, ExitKind::Completed);
    // 8 ranks in groups of 4 → 2 container files for the surviving
    // generation, no per-rank files.
    let files = store.list_prefix(&format!("{}/ckpt/", cfg.prefix));
    assert_eq!(files.len(), 2, "one container per group: {files:?}");
    assert!(files.iter().all(|f| f.contains("agg")));
    let obs = report.metrics.as_ref().expect("metrics");
    assert!(obs.set.value(metric_ids::CKPT_AGG_GATHERS) > 0);
    assert!(obs.set.value(metric_ids::CKPT_AGG_FORWARD_BYTES) > 0);
}

/// Buddy mode keeps the PFS out of the write path entirely when every
/// rank has a partner: state lives (twice) in the node-memory tier.
#[test]
fn buddy_mode_avoids_pfs_when_partnered() {
    let cfg = cfg_for(CkptMode::Buddy);
    let n = cfg.n_ranks(); // 8 ranks — everyone has a partner
    let b = builder(n, 1, EngineKind::Sequential);
    let store = b.store();
    let report = b.run(heat3d::program(cfg.clone())).expect("buddy run");
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(
        store
            .list_prefix(&format!("{}/ckpt/", cfg.prefix))
            .is_empty(),
        "no PFS checkpoint files in partnered buddy mode"
    );
    // Final generation: both copies of every rank's state in memory.
    let mem = store.list_prefix(&format!("{}/mem/", cfg.prefix));
    assert_eq!(mem.len(), 2 * n, "own + partner copy per rank: {mem:?}");
    let obs = report.metrics.as_ref().expect("metrics");
    assert_eq!(obs.set.value(metric_ids::CKPT_BUDDY_COPIES), {
        // One copy event per rank per surviving + retired generation
        // (20 iterations / C=5 → 4 generations × 8 ranks).
        4 * n as u64
    });
    assert_eq!(obs.set.value(metric_ids::CKPT_BUDDY_SPILLS), 0);
}

/// Table II fidelity regression: `paper_builder` still models *free*
/// checkpoint I/O ("the file system overhead for checkpoint/restart was
/// not considered in the experiments", §V-C). Charging a PFS must change
/// the completion time; making the free model explicit must not.
#[test]
fn paper_builder_keeps_free_fs_table_ii_fidelity() {
    let mut cfg = HeatConfig::paper(5);
    // Scale the paper config down (same per-rank load, fewer ranks).
    cfg.ranks = [2, 2, 2];
    cfg.global = [32, 32, 32];
    cfg.iterations = 10;

    let default_run = paper_builder(&cfg, 1, 17)
        .run(heat3d::program(cfg.clone()))
        .expect("paper run");
    assert_eq!(default_run.sim.exit, ExitKind::Completed);

    let explicit_free = paper_builder(&cfg, 1, 17)
        .fs_model(FsModel::free())
        .run(heat3d::program(cfg.clone()))
        .expect("free-fs run");
    assert_eq!(
        default_run.exit_time(),
        explicit_free.exit_time(),
        "paper_builder's default FS model is no longer free"
    );
    assert_eq!(default_run.sim.final_clocks, explicit_free.sim.final_clocks);

    let charged = paper_builder(&cfg, 1, 17)
        .fs_model(FsModel::striped(IO_NODES))
        .run(heat3d::program(cfg.clone()))
        .expect("striped run");
    assert!(
        charged.exit_time() > default_run.exit_time(),
        "striped PFS must cost virtual time over the free Table II model"
    );

    // E1 calibration: with free I/O the run is compute + communication;
    // compute alone is iterations × points/rank × per_point × 1000
    // slowdown, and communication adds only a small margin at this
    // scale.
    let compute_ns = cfg.iterations * cfg.points_per_rank() * cfg.per_point.as_nanos() * 1000;
    let e1 = default_run.exit_time().as_nanos();
    assert!(
        e1 >= compute_ns && e1 < compute_ns + compute_ns / 10,
        "E1 {e1} ns strayed from the calibrated compute time {compute_ns} ns"
    );
}

/// Daly honesty check: the predicted overhead fraction δ/(τ+δ) — built
/// from the *configured* FS model and the *measured* checkpoint volume —
/// must track the measured commit share of the run. The bound is a
/// tripwire at ≈2× the error measured when this test was written
/// (≈0.002), so a regression that doubles the model error fails loudly.
#[test]
fn daly_overhead_prediction_stays_honest() {
    let mut cfg = HeatConfig::small();
    cfg.mode = ComputeMode::Real;
    cfg.iterations = 40;
    cfg.ckpt_interval = 10;
    cfg.halo_interval = 10;
    // Compute-dominated regime (δ ≪ τ) — where Daly's failure-free
    // idealization is supposed to hold.
    cfg.per_point = SimTime::from_micros(2);
    let fs = FsModel::typical_pfs();

    let report = SimBuilder::new(cfg.n_ranks())
        .net(NetModel::small(cfg.n_ranks()))
        .fs_model(fs)
        .metrics(true)
        .run(heat3d::program(cfg.clone()))
        .expect("metered run");
    assert_eq!(report.sim.exit, ExitKind::Completed);
    let obs = report.metrics.as_ref().expect("metrics");
    let commit = obs.set.hist(metric_ids::CKPT_COMMIT_NS).expect("histogram");
    let writes = obs.set.value(metric_ids::CKPT_WRITES);
    let bytes = obs.set.value(metric_ids::CKPT_BYTES_WRITTEN);
    assert!(writes > 0 && commit.count == writes);

    // Model-side δ: the FS model's write time for the measured
    // per-checkpoint volume. Model-side τ: the per-cycle useful compute.
    let delta = fs.write_time((bytes / writes) as usize);
    let tau = SimTime(cfg.ckpt_interval * cfg.points_per_rank() * cfg.per_point.as_nanos());

    // Measured side: total commit time over total busy time, per rank.
    let n = cfg.n_ranks() as u64;
    let run_ns = report.exit_time().as_nanos() * n;
    let cmp = compare_overhead(tau, delta, commit.sum, run_ns);
    assert!(cmp.predicted_fraction > 0.0 && cmp.actual_fraction > 0.0);
    assert!(
        cmp.error().abs() < 0.004,
        "Daly overhead prediction drifted: predicted {:.4}, actual {:.4} \
         (tripwire at 2× the error measured at pin time)",
        cmp.predicted_fraction,
        cmp.actual_fraction
    );
}
