//! End-to-end checkpoint/restart integration tests: the heat application
//! under failure/restart cycles, exercising every layer together (engine
//! → machine models → MPI → fault injection → checkpoint/restart).

use xsim::apps::heat3d::{self, HeatConfig};
use xsim::apps::ComputeMode;
use xsim::prelude::*;
use xsim_ckpt::read_exit_time;

fn small_cfg() -> HeatConfig {
    HeatConfig::small() // 8^3 grid, 2^3 ranks, 20 iterations, C = H = 5
}

fn make_builder(n: usize) -> SimBuilder {
    SimBuilder::new(n)
        .net(NetModel::small(n))
        .proc(ProcModel::default())
}

/// Read the final (iteration == max) grid of `rank` from the store.
fn final_grid(store: &FsStore, cfg: &HeatConfig, rank: u32) -> Vec<f64> {
    let mgr = CheckpointManager::new(&cfg.prefix);
    let generation = mgr
        .latest_complete(store, cfg.n_ranks() as u32)
        .expect("final checkpoint exists");
    assert_eq!(generation, cfg.iterations, "final checkpoint generation");
    let file = store
        .get(&mgr.file_name(generation, rank))
        .expect("file exists");
    let ckpt = Checkpoint::decode(file.bytes()).expect("valid checkpoint");
    ckpt.section("grid")
        .expect("grid section")
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn heat_completes_and_checkpoints_without_failures() {
    let cfg = small_cfg();
    let builder = make_builder(cfg.n_ranks());
    let store = builder.store();
    let report = builder.run(heat3d::program(cfg.clone())).unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    // Only the final generation remains (previous ones deleted after
    // the barrier, paper §V-B).
    let mgr = CheckpointManager::new(&cfg.prefix);
    assert_eq!(
        mgr.latest_complete(&store, cfg.n_ranks() as u32),
        Some(cfg.iterations)
    );
    assert_eq!(
        store.list_prefix("heat/ckpt/").len(),
        cfg.n_ranks(),
        "exactly one generation remains"
    );
}

#[test]
fn multirank_matches_single_rank_when_halos_are_fresh() {
    // With a halo exchange every iteration, the decomposed solve is
    // numerically identical to the single-rank solve.
    let mut multi = small_cfg();
    multi.halo_interval = 1;
    multi.iterations = 10;
    let mut single = multi.clone();
    single.ranks = [1, 1, 1];

    let mb = make_builder(multi.n_ranks());
    let ms = mb.store();
    mb.run(heat3d::program(multi.clone())).unwrap();

    let sb = make_builder(1);
    let ss = sb.store();
    sb.run(heat3d::program(single.clone())).unwrap();

    let whole = final_grid(&ss, &single, 0);
    // Compare rank 0's interior block (local 4^3 at origin) against the
    // corresponding region of the single-rank grid.
    let part = final_grid(&ms, &multi, 0);
    let l = multi.local(); // [4,4,4] with halo dims 6^3
    let sl = single.local(); // [8,8,8] with halo dims 10^3
    let idx = |dims: [usize; 3], i: usize, j: usize, k: usize| {
        (k * (dims[1] + 2) + j) * (dims[0] + 2) + i
    };
    for k in 1..=l[2] {
        for j in 1..=l[1] {
            for i in 1..=l[0] {
                let a = part[idx(l, i, j, k)];
                let b = whole[idx(sl, i, j, k)];
                assert!(
                    (a - b).abs() < 1e-12,
                    "mismatch at ({i},{j},{k}): {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn failure_restart_reproduces_failure_free_result() {
    // The gold test: a run with an injected failure + restart must
    // produce the exact same final grid as the failure-free run, because
    // checkpoint/restart recomputes the lost progress deterministically.
    let cfg = small_cfg();

    // Failure-free reference.
    let b = make_builder(cfg.n_ranks());
    let store_ref = b.store();
    let r = b.run(heat3d::program(cfg.clone())).unwrap();
    assert_eq!(r.sim.exit, ExitKind::Completed);
    let e1 = r.exit_time();

    // Faulty run: rank 3 dies mid-run; the orchestrator restarts until
    // completion.
    let store = FsStore::new();
    let mgr = CheckpointManager::new(&cfg.prefix);
    let orch = Orchestrator::new(FailureModel::None, 1, mgr);
    // Inject one deterministic failure through the builder instead of
    // the random model: wrap run 0 manually.
    let program = heat3d::program(cfg.clone());
    let first = make_builder(cfg.n_ranks())
        .fs_store(store.clone())
        .inject_failure(3, e1.scale(0.4))
        .run(program.clone())
        .unwrap();
    assert_eq!(first.sim.exit, ExitKind::Aborted);
    assert_eq!(first.sim.failures.len(), 1);

    // Between-runs cleanup + exit-time persistence, then restart to
    // completion via the orchestrator (no further failures).
    xsim_ckpt::write_exit_time(&store, first.exit_time());
    orch.manager
        .cleanup_incomplete(&store, cfg.n_ranks() as u32);
    let result = orch
        .run_to_completion(store.clone(), program, cfg.n_ranks(), || {
            make_builder(cfg.n_ranks())
        })
        .unwrap();
    assert!(result.completed);

    // Continuous virtual timing: the final time exceeds the failure-free
    // time (lost progress was recomputed), and the restart started from
    // the aborted run's exit time (paper §IV-E).
    assert!(
        result.finish_time > e1,
        "E2 {} <= E1 {e1}",
        result.finish_time
    );

    // Numerical equivalence.
    for rank in 0..cfg.n_ranks() as u32 {
        let a = final_grid(&store_ref, &cfg, rank);
        let b = final_grid(&store, &cfg, rank);
        assert_eq!(a, b, "rank {rank} grids differ after restart");
    }
}

#[test]
fn orchestrator_drives_random_failures_to_completion() {
    let mut cfg = small_cfg();
    cfg.iterations = 40;
    cfg.mode = ComputeMode::Modeled;
    cfg.per_point = SimTime::from_micros(50); // long runs → failures hit

    // First measure E1 to pick an MTTF that produces failures.
    let b = make_builder(cfg.n_ranks());
    let e1 = b.run(heat3d::program(cfg.clone())).unwrap().exit_time();

    let mttf = e1.scale(0.5);
    let store = FsStore::new();
    let orch = Orchestrator::new(
        FailureModel::UniformTwiceMttf { mttf },
        42,
        CheckpointManager::new(&cfg.prefix),
    );
    let result = orch
        .run_to_completion(
            store.clone(),
            heat3d::program(cfg.clone()),
            cfg.n_ranks(),
            || make_builder(cfg.n_ranks()),
        )
        .unwrap();
    assert!(result.completed, "did not complete in restart budget");
    assert!(
        result.failures >= 1,
        "MTTF of E1/2 should produce at least one failure"
    );
    assert!(result.finish_time > e1);
    assert_eq!(result.runs.len() as u64, result.failures + 1);
    // MTTF_a = E2 / (F + 1), Table II definition.
    let mttfa = result.application_mttf().unwrap();
    assert_eq!(
        mttfa.as_nanos(),
        result.finish_time.as_nanos() / (result.failures + 1)
    );
    // Exit-time file reflects the last aborted run.
    assert!(read_exit_time(&store).is_some());
}

#[test]
fn checkpoint_interval_trades_overhead_for_lost_work() {
    // The qualitative content of Table II at small scale: shorter
    // checkpoint intervals cost a little without failures (E1 up) but
    // save recomputation under failures (E2 down).
    let mut base = small_cfg();
    base.iterations = 60;
    base.mode = ComputeMode::Modeled;
    base.per_point = SimTime::from_micros(100);
    // Charge checkpoints through a non-free file system so E1 moves.
    let fs_model = FsModel::typical_pfs();

    let e = |interval: u64| {
        let mut cfg = base.clone();
        cfg.ckpt_interval = interval;
        cfg.halo_interval = interval;
        let b = make_builder(cfg.n_ranks()).fs_model(fs_model);
        b.run(heat3d::program(cfg)).unwrap().exit_time()
    };
    let e1_coarse = e(30);
    let e1_fine = e(5);
    assert!(
        e1_fine > e1_coarse,
        "more checkpoints must cost more: {e1_fine} vs {e1_coarse}"
    );

    // With a mid-run failure, the finer interval loses less progress.
    let e2 = |interval: u64| {
        let mut cfg = base.clone();
        cfg.ckpt_interval = interval;
        cfg.halo_interval = interval;
        let program = heat3d::program(cfg.clone());
        let store = FsStore::new();
        let orch = Orchestrator::new(
            FailureModel::UniformTwiceMttf {
                mttf: e1_coarse.scale(0.45),
            },
            7,
            CheckpointManager::new(&cfg.prefix),
        );
        let res = orch
            .run_to_completion(store, program, cfg.n_ranks(), || {
                make_builder(cfg.n_ranks()).fs_model(fs_model)
            })
            .unwrap();
        assert!(res.completed);
        (res.finish_time, res.failures)
    };
    let (e2_coarse, f_coarse) = e2(30);
    let (e2_fine, f_fine) = e2(5);
    // Same failure draws (same seed) — compare only when both saw
    // failures.
    assert!(f_coarse >= 1 && f_fine >= 1);
    assert!(
        e2_fine < e2_coarse,
        "finer checkpointing should lose less progress: {e2_fine} vs {e2_coarse}"
    );
}

#[test]
fn heat_runs_identically_on_parallel_engine() {
    let mut cfg = small_cfg();
    cfg.mode = ComputeMode::Modeled;
    let run = |workers: usize| {
        SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .workers(workers)
            .inject_failure(5, SimTime::from_micros(600))
            .errhandler(ErrHandler::Fatal)
            .run(heat3d::program(cfg.clone()))
            .unwrap()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.sim.final_clocks, par.sim.final_clocks);
    assert_eq!(seq.sim.exit, par.sim.exit);
    assert_eq!(seq.sim.abort_time, par.sim.abort_time);
}

#[test]
fn failure_during_checkpoint_phase_leaves_incomplete_set() {
    // Paper §V-D: "a failure during the checkpoint phase is detected in
    // the following barrier … always resulting in an incomplete or
    // corrupted checkpoint". Inject a failure timed into the checkpoint
    // window by using a costly file system.
    let mut cfg = small_cfg();
    cfg.iterations = 10;
    cfg.ckpt_interval = 5;
    cfg.halo_interval = 5;
    let fs_model = FsModel {
        meta_latency: SimTime::from_millis(1),
        write_bw: 1.0e6, // slow writes → wide checkpoint window
        read_bw: 1.0e9,
        pfs: None,
    };
    // First, find when the first checkpoint starts: run cleanly.
    let probe = make_builder(cfg.n_ranks()).fs_model(fs_model);
    let clean = probe.run(heat3d::program(cfg.clone())).unwrap();
    assert_eq!(clean.sim.exit, ExitKind::Completed);

    // Now kill rank 2 inside the first checkpoint window. The window is
    // wide (ms-scale writes), so one-third of the clean exit time lands
    // either in compute or checkpoint; sweep a few times to hit it.
    let mut hit_incomplete = false;
    for frac in [0.35, 0.4, 0.45, 0.5, 0.55] {
        let cfgx = cfg.clone();
        let b = make_builder(cfgx.n_ranks()).fs_model(fs_model);
        let store = b.store();
        let at = clean.exit_time().scale(frac);
        let r = b
            .inject_failure(2, at)
            .run(heat3d::program(cfgx.clone()))
            .unwrap();
        if r.sim.exit != ExitKind::Aborted {
            continue;
        }
        let mgr = CheckpointManager::new(&cfgx.prefix);
        let removed = mgr.cleanup_incomplete(&store, cfgx.n_ranks() as u32);
        if !removed.is_empty() {
            hit_incomplete = true;
            break;
        }
    }
    assert!(
        hit_incomplete,
        "no injection produced an incomplete checkpoint set"
    );
}

mod restart_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For any failure time within the run, checkpoint/restart must
        /// reproduce the failure-free final grid exactly, and the final
        /// time must exceed the failure-free time (lost work recomputed).
        #[test]
        fn restart_reproduces_result_for_any_failure_time(
            frac in 0.05f64..0.95,
            victim in 0usize..8,
        ) {
            let cfg = small_cfg();
            let reference = make_builder(cfg.n_ranks());
            let store_ref = reference.store();
            let e1 = reference.run(heat3d::program(cfg.clone())).unwrap().exit_time();

            let store = FsStore::new();
            let program = heat3d::program(cfg.clone());
            let first = make_builder(cfg.n_ranks())
                .fs_store(store.clone())
                .inject_failure(victim, e1.scale(frac))
                .run(program.clone())
                .unwrap();
            prop_assume!(first.sim.exit == ExitKind::Aborted); // very late injections may miss
            xsim_ckpt::write_exit_time(&store, first.exit_time());
            let mgr = CheckpointManager::new(&cfg.prefix);
            mgr.cleanup_incomplete(&store, cfg.n_ranks() as u32);
            let orch = Orchestrator::new(FailureModel::None, 1, mgr);
            let result = orch
                .run_to_completion(store.clone(), program, cfg.n_ranks(), || {
                    make_builder(cfg.n_ranks())
                })
                .unwrap();
            prop_assert!(result.completed);
            prop_assert!(result.finish_time > e1);
            for rank in 0..cfg.n_ranks() as u32 {
                let a = final_grid(&store_ref, &cfg, rank);
                let b = final_grid(&store, &cfg, rank);
                prop_assert_eq!(&a, &b, "rank {} diverged", rank);
            }
        }
    }
}
