//! Resilience-feature integration tests across crates: soft errors,
//! I/O fault injection, detector variants, failure schedules.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xsim::apps::kernels;
use xsim::prelude::*;
use xsim_fault::soft::{self, SoftErrorPlan};
use xsim_fs::{IoFaultKind, IoFaultRule};

#[test]
fn failure_schedule_string_drives_injection() {
    let schedule: FailureSchedule = "2:0.5".parse().unwrap();
    let report = SimBuilder::new(4)
        .net(NetModel::small(4))
        .inject_failures(schedule.iter())
        .errhandler(ErrHandler::Return)
        .run_app(|mpi| async move {
            mpi.sleep(SimTime::from_secs(1)).await;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), 2);
    assert_eq!(report.sim.failures[0].scheduled, SimTime::from_millis(500));
    assert_eq!(report.sim.failures[0].actual, SimTime::from_secs(1));
}

#[test]
fn soft_errors_reach_the_application() {
    // A bit flip scheduled at 0.5 s must be visible to the rank's next
    // poll and corrupt its buffer — silently (no failure, no abort).
    let plan = SoftErrorPlan::new().with_flip(1, SimTime::from_millis(500), 123);
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = seen.clone();
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .setup_hook(plan.install_hook())
        .run_app(move |mpi| {
            let seen = seen2.clone();
            async move {
                let mut buf = vec![0u8; 64];
                assert!(soft::poll_flips().is_empty(), "no flips before t=0.5s");
                mpi.sleep(SimTime::from_secs(1)).await;
                for flip in soft::poll_flips() {
                    soft::apply_flip(&mut buf, flip);
                    seen.fetch_add(1, Ordering::Relaxed);
                }
                if mpi.rank == 1 {
                    let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
                    assert_eq!(ones, 1, "exactly one bit flipped");
                } else {
                    assert!(buf.iter().all(|&b| b == 0));
                }
                mpi.finalize();
                Ok(())
            }
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert_eq!(seen.load(Ordering::Relaxed), 1);
}

#[test]
fn io_fault_causes_process_failure() {
    // Paper §III-B: an MPI process failure can be caused by "a file I/O
    // error reported by the parallel file system". The application
    // treats an injected write error as fatal and self-destructs.
    let builder = SimBuilder::new(2)
        .net(NetModel::small(2))
        .errhandler(ErrHandler::Return);
    let store = builder.store();
    store.inject_fault(IoFaultRule {
        prefix: "data/".into(),
        kind: IoFaultKind::Write,
        rank: Some(Rank(1)),
        remaining: 1,
    });
    let report = builder
        .run_app(|mpi| async move {
            mpi.sleep(SimTime::from_millis(1)).await;
            let name = format!("data/rank{}", mpi.rank);
            if xsim::fs::write(&name, Bytes::from_static(b"payload"))
                .await
                .is_err()
            {
                // Injected I/O error → process failure (never returns).
                mpi.fail_now().await
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), 1);
    assert!(store.exists("data/rank0"));
    assert!(!store.exists("data/rank1"));
}

#[test]
fn monitor_detector_beats_timeout_detector() {
    // Ablation (DESIGN.md §4.4): a monitoring-system detector reports
    // failures faster than the pure communication-timeout detection the
    // paper currently implements (§IV-C).
    let run = |detector: Detector| {
        SimBuilder::new(2)
            .net(NetModel::small(2))
            .detector(detector)
            .inject_failure(1, SimTime::from_millis(100))
            .errhandler(ErrHandler::Return)
            .run_app(|mpi| async move {
                if mpi.rank == 0 {
                    let err = mpi.recv(mpi.world(), Some(1), None).await.unwrap_err();
                    assert!(matches!(err, MpiError::ProcFailed { .. }));
                } else {
                    mpi.sleep(SimTime::from_millis(200)).await;
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let timeout = run(Detector::Timeout);
    let monitor = run(Detector::Monitor {
        latency: SimTime::from_millis(10),
    });
    // Failure activates at 200 ms (end of the compute slice). Timeout
    // detection: 200 ms + 1 s timeout. Monitor: 200 ms + 10 ms.
    assert_eq!(
        timeout.sim.final_clocks[0],
        SimTime::from_millis(200) + SimTime::from_secs(1)
    );
    assert_eq!(
        monitor.sim.final_clocks[0],
        SimTime::from_millis(200) + SimTime::from_millis(10)
    );
    assert!(monitor.sim.final_clocks[0] < timeout.sim.final_clocks[0]);
}

#[test]
fn kernel_apps_run_on_the_paper_torus_subset() {
    // Run the microbenchmark kernels on a torus machine slice.
    let mut net = NetModel::paper_machine();
    net.topology = Topology::Torus3d { dims: [4, 4, 4] };
    let n = 64;
    let report = SimBuilder::new(n)
        .net(net.clone())
        .run(kernels::ring(3, 1024))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert_eq!(report.mpi.sends as usize, 3 * n);

    let report = SimBuilder::new(n)
        .net(net)
        .run(kernels::compute_allreduce(5, 16, SimTime::from_millis(1)))
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    // 5 rounds × (compute ≥ 1 ms) plus collective time.
    assert!(report.sim.timing.min >= SimTime::from_millis(5));
}

#[test]
fn first_impressions_phases() {
    // Paper §V-D narrative, reproduced deterministically: a failure in
    // the *compute* phase is detected at the halo exchange; a failure in
    // the *checkpoint* phase is detected at the following barrier; both
    // lead to an abort, leaving either an incomplete/corrupted
    // checkpoint or partially deleted old checkpoints.
    use xsim::apps::heat3d::{self, HeatConfig};
    let mut cfg = HeatConfig::small();
    cfg.iterations = 10;
    cfg.ckpt_interval = 5;
    cfg.halo_interval = 5;
    let fs_model = FsModel::typical_pfs();

    // Clean run to find the timeline.
    let clean = SimBuilder::new(cfg.n_ranks())
        .net(NetModel::small(cfg.n_ranks()))
        .fs_model(fs_model)
        .run(heat3d::program(cfg.clone()))
        .unwrap();
    assert_eq!(clean.sim.exit, ExitKind::Completed);

    // Failure early in the run lands in compute; the run must abort and
    // leave the store without a complete final checkpoint set.
    let b = SimBuilder::new(cfg.n_ranks())
        .net(NetModel::small(cfg.n_ranks()))
        .fs_model(fs_model)
        .inject_failure(6, clean.exit_time().scale(0.2));
    let store = b.store();
    let aborted = b.run(heat3d::program(cfg.clone())).unwrap();
    assert_eq!(aborted.sim.exit, ExitKind::Aborted);
    let mgr = CheckpointManager::new(&cfg.prefix);
    assert!(
        mgr.latest_complete(&store, cfg.n_ranks() as u32) != Some(cfg.iterations),
        "aborted run must not have finished its final checkpoint"
    );
    // Abort time is after the failure (detection needs communication).
    let failure = aborted.sim.failures[0].actual;
    let abort = aborted.sim.abort_time.unwrap();
    assert!(abort > failure, "abort {abort} not after failure {failure}");
}
