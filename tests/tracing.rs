//! Execution-trace integration tests.

use bytes::Bytes;
use xsim::mpi::{PhaseKind, Trace};
use xsim::prelude::*;

#[test]
fn trace_captures_phase_timeline() {
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .trace(true)
        .run_app(|mpi| async move {
            let w = mpi.world();
            mpi.compute(Work::native_time(SimTime::from_millis(10)))
                .await;
            if mpi.rank == 0 {
                mpi.send(w, 1, 0, Bytes::from(vec![0u8; 256])).await?;
            } else {
                mpi.recv(w, Some(0), Some(0)).await?;
            }
            mpi.barrier(w).await?;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let trace = report.trace.expect("tracing enabled");

    // Every rank has a compute phase of exactly 10 ms starting at 0.
    for r in 0..2u32 {
        let first = trace.for_rank(Rank(r)).next().expect("events exist");
        assert_eq!(first.kind, PhaseKind::Compute);
        assert_eq!(first.start, SimTime::ZERO);
        assert_eq!(first.duration(), SimTime::from_millis(10));
    }
    // Rank 0 sent 256 bytes to rank 1.
    let send = trace
        .for_rank(Rank(0))
        .find(|e| e.kind == PhaseKind::Send)
        .expect("send traced");
    assert_eq!(send.peer, Some(Rank(1)));
    assert_eq!(send.bytes, 256);
    assert!(send.start >= SimTime::from_millis(10));
    // Rank 1's recv knows its source.
    let recv = trace
        .for_rank(Rank(1))
        .find(|e| e.kind == PhaseKind::Recv)
        .expect("recv traced");
    assert_eq!(recv.peer, Some(Rank(0)));
    assert_eq!(recv.bytes, 256);
    // Both ranks traced the barrier.
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| e.kind == PhaseKind::Collective)
            .count(),
        2
    );
    // Intervals are well-formed.
    for e in &trace.events {
        assert!(e.end >= e.start, "negative interval {e:?}");
    }
}

#[test]
fn trace_totals_reflect_compute_share() {
    let report = SimBuilder::new(4)
        .net(NetModel::small(4))
        .trace(true)
        .run_app(|mpi| async move {
            for _ in 0..5 {
                mpi.compute(Work::native_time(SimTime::from_millis(20)))
                    .await;
                mpi.allreduce_f64(mpi.world(), &[1.0], ReduceOp::Sum)
                    .await?;
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let trace = report.trace.unwrap();
    let frac = trace.compute_fraction();
    assert!(
        frac > 0.9,
        "compute-bound run should be >90% compute, got {frac}"
    );
    let totals = trace.totals();
    let compute = totals
        .iter()
        .find(|(k, _)| *k == PhaseKind::Compute)
        .unwrap()
        .1;
    // 4 ranks × 5 phases × 20 ms.
    assert_eq!(compute, SimTime::from_millis(400));
}

#[test]
fn tracing_disabled_by_default_and_costless() {
    let report = SimBuilder::new(2)
        .net(NetModel::small(2))
        .run_app(|mpi| async move {
            mpi.compute(Work::native_time(SimTime::from_millis(1)))
                .await;
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert!(report.trace.is_none());
}

#[test]
fn trace_is_deterministic_and_engine_independent() {
    let run = |workers: usize| {
        SimBuilder::new(6)
            .net(NetModel::small(6))
            .workers(workers)
            .trace(true)
            .run_app(|mpi| async move {
                mpi.compute(Work::native_time(SimTime::from_micros(
                    (mpi.rank as u64 + 1) * 100,
                )))
                .await;
                mpi.barrier(mpi.world()).await?;
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let a = run(1).trace.unwrap();
    let b = run(3).trace.unwrap();
    assert_eq!(a.events, b.events, "trace must not depend on the engine");
    // CSV renders one line per event plus header.
    assert_eq!(a.to_csv().lines().count(), a.events.len() + 1);
}

#[test]
fn empty_run_yields_empty_trace() {
    let report = SimBuilder::new(1)
        .net(NetModel::small(1))
        .trace(true)
        .run_app(|mpi| async move {
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    let t: Trace = report.trace.unwrap();
    assert!(t.events.is_empty());
    assert_eq!(t.compute_fraction(), 0.0);
}
