//! Route-cache regression tests: the epoch-keyed cache must be
//! semantically invisible when link state changes *both ways* mid-run —
//! a link that dies and later recovers crosses two epoch boundaries, and
//! a stale cache entry in either direction (healthy route served during
//! the outage, or detour served after the repair) would change message
//! timing and break determinism.
//!
//! `tests/engine_diff.rs` and `tests/net_faults.rs` pin the cross-engine
//! surface; this file pins cached-vs-uncached equivalence.

use bytes::Bytes;
use xsim::prelude::*;
use xsim_net::{LinkFaultKind, LinkStateTable, NetFault};

/// The deterministic metrics snapshot (no engine section).
fn snapshot(report: &RunReport) -> String {
    report
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .to_json(None)
}

/// Unit level: warm the cache while the link is healthy, query through
/// the outage, query again after the repair. Every answer must equal
/// the cache-bypassing BFS oracle, and the detour must appear *and
/// disappear* — a cache keyed on anything coarser than the fault epoch
/// would serve the healthy route during the outage or the detour after
/// the repair.
#[test]
fn die_and_recover_invalidates_cached_routes() {
    let topo = Topology::Torus3d { dims: [4, 4, 4] };
    // The endpoints of the faulted link itself: healthy they are 1 hop
    // apart, during the outage the shortest detour is 3 hops.
    let (a, b) = (topo.node_at([1, 0, 0]), topo.node_at([2, 0, 0]));
    let mut tbl = LinkStateTable::new(topo.clone());
    tbl.add(NetFault {
        node: a,
        dir: Some(0), // +x: the a→b link
        kind: LinkFaultKind::Down,
        from: SimTime::from_millis(500),
        until: Some(SimTime::from_secs(1)),
    });
    assert_eq!(tbl.epoch_count(), 3, "healthy / down / repaired");

    let base = topo.hops(a, b);
    assert_eq!(base, 1);
    // Probe each epoch twice (cold then warm) on, before and after each
    // boundary.
    let probes = [
        (SimTime::ZERO, base),
        (SimTime::from_millis(499), base),
        (SimTime::from_millis(500), base + 2), // outage: detour
        (SimTime::from_millis(999), base + 2),
        (SimTime::from_secs(1), base), // repaired: detour gone
        (SimTime::from_secs(2), base),
    ];
    for (t, want_hops) in probes {
        for pass in ["cold", "warm"] {
            let got = tbl.route(a, b, t).expect("torus stays connected");
            assert_eq!(got.hops, want_hops, "{pass} hops at {t:?}");
            assert_eq!(
                Some(got),
                tbl.route_uncached(a, b, t),
                "{pass} route() must match the fresh-BFS oracle at {t:?}"
            );
        }
    }
    // Only the outage epoch consults the cache (fault-free epochs take
    // the closed-form fast path): one miss fills (a, b, outage-epoch),
    // the three remaining outage probes hit it.
    let stats = tbl.route_cache_stats();
    if tbl.route_cache_enabled() {
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 3, "{stats:?}");
    }
}

/// Full-run level: a neighbor exchange that crosses the faulted link
/// before, during and after the outage must produce a byte-identical
/// deterministic report with the route cache enabled and disabled
/// (`XSIM_NET_ROUTE_CACHE=off` — the pre-cache message path).
#[test]
fn cached_and_uncached_runs_are_byte_identical() {
    let run = || {
        let mut net = NetModel::paper_machine();
        net.topology = Topology::Torus3d { dims: [4, 4, 4] };
        let faults = vec![
            // Dies at 500 ms, recovers at 1 s.
            NetFault {
                node: net.topology.node_at([1, 0, 0]),
                dir: Some(0),
                kind: LinkFaultKind::Down,
                from: SimTime::from_millis(500),
                until: Some(SimTime::from_secs(1)),
            },
            // A second transition pair from a degraded link, so the run
            // spans several distinct epochs.
            NetFault {
                node: net.topology.node_at([2, 2, 0]),
                dir: Some(2),
                kind: LinkFaultKind::Degraded(0.25),
                from: SimTime::from_millis(700),
                until: Some(SimTime::from_millis(1500)),
            },
        ];
        SimBuilder::new(64)
            .net(net)
            .net_faults(faults)
            .metrics(true)
            .run_app(|mpi| async move {
                let w = mpi.world();
                let dst = (mpi.rank + 1) % mpi.size;
                let src = (mpi.rank + mpi.size - 1) % mpi.size;
                // One exchange in each fault epoch: healthy, dead,
                // degraded, repaired.
                for (round, pause_ms) in [(0u32, 600u64), (1, 300), (2, 700), (3, 0)] {
                    let got = mpi
                        .sendrecv(
                            w,
                            dst,
                            round,
                            Bytes::from(vec![round as u8; 2048]),
                            Some(src),
                            Some(round),
                        )
                        .await?;
                    assert_eq!(got.data.len(), 2048);
                    if pause_ms > 0 {
                        mpi.sleep(SimTime::from_millis(pause_ms)).await;
                    }
                }
                mpi.finalize();
                Ok(())
            })
            .expect("route-cache run")
    };

    std::env::set_var("XSIM_NET_ROUTE_CACHE", "off");
    let uncached = run();
    std::env::set_var("XSIM_NET_ROUTE_CACHE", "on");
    let cached = run();
    std::env::remove_var("XSIM_NET_ROUTE_CACHE");

    assert_eq!(uncached.sim.exit, ExitKind::Completed);
    assert_eq!(
        snapshot(&cached),
        snapshot(&uncached),
        "route cache changed the deterministic metrics surface"
    );
    assert_eq!(
        cached.sim.final_clocks, uncached.sim.final_clocks,
        "route cache changed simulated time"
    );
    assert_eq!(
        cached.sim.events_processed, uncached.sim.events_processed,
        "route cache changed the event schedule"
    );
}
