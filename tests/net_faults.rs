//! Network fault injection integration tests: lossy links with
//! retransmission + backoff, degraded-mode rerouting on the torus, and
//! escalation of unreachable peers into the ULFM recovery path.

use bytes::Bytes;
use xsim::prelude::*;
use xsim_obs::ids;

fn metric(report: &RunReport, id: usize) -> u64 {
    report
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .set
        .value(id)
}

/// The metrics snapshot without the engine section (which carries wall
/// clock) — the byte-identical determinism surface.
fn snapshot(report: &RunReport) -> String {
    report
        .metrics
        .as_ref()
        .expect("metrics enabled")
        .to_json(None)
}

/// A ring exchange over a lossy fabric completes via retransmission and
/// is bit-for-bit deterministic: two runs with the same seed produce
/// identical metrics snapshots.
#[test]
fn lossy_ring_completes_and_is_deterministic() {
    let run = || {
        SimBuilder::new(8)
            .net(NetModel::small(8))
            .seed(7)
            .metrics(true)
            .lossy(LossyTransport {
                drop_prob: 0.3,
                corrupt_prob: 0.05,
                ..LossyTransport::default()
            })
            .run_app(|mpi| async move {
                let w = mpi.world();
                for round in 0..4u32 {
                    let dst = (mpi.rank + 1) % mpi.size;
                    let src = (mpi.rank + mpi.size - 1) % mpi.size;
                    let got = mpi
                        .sendrecv(
                            w,
                            dst,
                            round,
                            Bytes::from(vec![round as u8; 512]),
                            Some(src),
                            Some(round),
                        )
                        .await?;
                    assert_eq!(got.data.len(), 512);
                }
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let a = run();
    assert_eq!(a.sim.exit, ExitKind::Completed);
    // 8 ranks × 4 rounds at 30% drop + 5% corrupt: loss must have been
    // exercised and repaired by the retransmission machinery.
    assert!(metric(&a, ids::NET_DROPS) > 0, "no drops recorded");
    assert!(metric(&a, ids::NET_RETRANSMITS) > 0, "no retransmits");
    assert!(metric(&a, ids::NET_BACKOFF_NS) > 0, "no backoff charged");
    assert_eq!(a.sim.failures.len(), 0, "loss repaired, no escalation");

    let b = run();
    assert_eq!(
        snapshot(&a),
        snapshot(&b),
        "same seed must reproduce the exact drop/backoff sequence"
    );
}

/// When the retry budget towards one victim is exhausted, the sender
/// sees `MPI_ERR_PROC_FAILED` and the survivors shrink the communicator
/// around the victim — the lossy transport composes with ULFM.
#[test]
fn exhausted_retries_escalate_to_proc_failed_and_shrink() {
    let run = || {
        SimBuilder::new(4)
            .net(NetModel::small(4))
            .seed(11)
            .metrics(true)
            .errhandler(ErrHandler::Return)
            .lossy(LossyTransport {
                drop_prob: 1.0,
                max_retries: 2,
                victim: Some(Rank(3)),
                ..LossyTransport::default()
            })
            .run_app(|mpi| async move {
                let w = mpi.world();
                if mpi.rank == 0 {
                    // Every attempt towards the victim is dropped; the
                    // budget exhausts and the send errors out.
                    let err = mpi
                        .send(w, 3, 0, Bytes::from_static(b"into the void"))
                        .await
                        .unwrap_err();
                    assert!(
                        matches!(err, MpiError::ProcFailed { rank: Rank(3), .. }),
                        "expected ProcFailed(3), got {err:?}"
                    );
                    mpi.comm_revoke(w)?;
                } else if mpi.rank != 3 {
                    // Survivors wait until the failure or revoke surfaces.
                    let err = mpi.recv(w, None, None).await.unwrap_err();
                    assert!(matches!(
                        err,
                        MpiError::Revoked | MpiError::ProcFailed { .. }
                    ));
                } else {
                    // The victim blocks forever; escalation kills it.
                    let _ = mpi.recv(w, Some(0), Some(99)).await;
                    unreachable!("victim must be failed by escalation");
                }
                let shrunk = mpi.comm_shrink(w).await?;
                assert_eq!(mpi.comm_size(shrunk)?, 3, "victim excluded");
                mpi.barrier(shrunk).await?;
                mpi.finalize();
                Ok(())
            })
            .unwrap()
    };
    let a = run();
    assert_eq!(a.sim.exit, ExitKind::FailedOnly, "survivors finish");
    assert_eq!(a.sim.failures.len(), 1, "exactly the escalated victim");
    assert_eq!(a.sim.failures[0].rank, Rank(3));
    assert!(metric(&a, ids::NET_DROPS) >= 3, "1 + max_retries attempts");
    assert!(a.mpi.proc_failed_errors > 0);

    let b = run();
    assert_eq!(snapshot(&a), snapshot(&b));
}

/// A link fault on the torus inflates hop counts (rerouting) and a
/// degraded link stretches transfers; both are visible in the metrics
/// and neither disturbs completion.
#[test]
fn torus_link_fault_reroutes_and_degrades() {
    let mut net = NetModel::paper_machine();
    net.topology = Topology::Torus3d { dims: [4, 4, 4] };
    let topo = net.topology.clone();
    let n = 64;
    let faults = vec![
        // Kill node 0's +x link permanently: 0→1 traffic must detour.
        NetFault {
            node: topo.node_at([0, 0, 0]),
            dir: Some(0),
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        },
        // Degrade node 2's +x link to quarter bandwidth.
        NetFault {
            node: topo.node_at([2, 0, 0]),
            dir: Some(0),
            kind: LinkFaultKind::Degraded(0.25),
            from: SimTime::ZERO,
            until: None,
        },
    ];
    let report = SimBuilder::new(n)
        .net(net)
        .net_faults(faults)
        .metrics(true)
        .run_app(|mpi| async move {
            let w = mpi.world();
            // Neighbor exchange along x so both faulted links carry
            // traffic (ranks are laid out x-major on the torus).
            let dst = (mpi.rank + 1) % mpi.size;
            let src = (mpi.rank + mpi.size - 1) % mpi.size;
            let got = mpi
                .sendrecv(w, dst, 0, Bytes::from(vec![0u8; 4096]), Some(src), Some(0))
                .await?;
            assert_eq!(got.data.len(), 4096);
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
    assert!(
        metric(&report, ids::NET_REROUTED_HOPS) > 0,
        "dead link must force a longer route"
    );
    assert!(
        metric(&report, ids::NET_DEGRADED_NS) > 0,
        "degraded link must stretch a transfer"
    );
}

/// A switch fault that cuts a node off entirely partitions the network;
/// senders towards it escalate the peer into the process-failure path.
#[test]
fn partition_escalates_peer_failure() {
    let mut net = NetModel::paper_machine();
    net.topology = Topology::Torus3d { dims: [2, 2, 2] };
    let victim_node = net.topology.node_at([1, 1, 1]);
    let report = SimBuilder::new(8)
        .net(net)
        .net_faults(vec![NetFault {
            node: victim_node,
            dir: None, // switch: all six links
            kind: LinkFaultKind::Down,
            from: SimTime::ZERO,
            until: None,
        }])
        .errhandler(ErrHandler::Return)
        .run_app(move |mpi| async move {
            let w = mpi.world();
            if mpi.rank == 0 {
                let err = mpi
                    .send(w, victim_node, 0, Bytes::from_static(b"unroutable"))
                    .await
                    .unwrap_err();
                assert!(matches!(err, MpiError::ProcFailed { .. }));
            } else if mpi.rank != victim_node {
                mpi.sleep(SimTime::from_secs(2)).await;
            } else {
                let _ = mpi.recv(w, Some(0), Some(0)).await;
                unreachable!("partitioned rank must be escalated");
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.failures.len(), 1);
    assert_eq!(report.sim.failures[0].rank.idx(), victim_node);
}
