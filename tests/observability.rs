//! End-to-end observability tests: a traced + metered heat3d run must
//! produce phase and file-I/O trace events, a parseable Chrome trace,
//! and nonzero subsystem counters — and a run without metrics must
//! carry no observability state at all.

use xsim::apps::heat3d::{self, HeatConfig};
use xsim::mpi::PhaseKind;
use xsim::obs::Json;
use xsim::prelude::*;

fn metered_run(cfg: &HeatConfig) -> RunReport {
    SimBuilder::new(cfg.n_ranks())
        .net(NetModel::small(cfg.n_ranks()))
        .proc(ProcModel::default())
        .fs_model(FsModel::typical_pfs())
        .trace(true)
        .metrics(true)
        .run(heat3d::program(cfg.clone()))
        .expect("heat3d run")
}

#[test]
fn heat3d_produces_trace_events_and_metrics() {
    let cfg = HeatConfig::small();
    let report = metered_run(&cfg);
    assert_eq!(report.sim.exit, ExitKind::Completed);

    // Trace: collective phases (the per-checkpoint barrier) and file-io
    // phases (checkpoint writes folded in from the fs layer).
    let trace = report.trace.as_ref().expect("tracing enabled");
    let count = |k: PhaseKind| trace.events.iter().filter(|e| e.kind == k).count();
    assert!(count(PhaseKind::Collective) > 0, "collectives traced");
    assert!(count(PhaseKind::FileIo) > 0, "file I/O traced");

    // Metrics: engine, network, fs and checkpoint counters are nonzero.
    let obs = report.metrics.as_ref().expect("metrics enabled");
    assert!(obs.set.value(metric_ids::NET_MSGS_EAGER) > 0);
    assert!(obs.set.value(metric_ids::FS_WRITES) > 0);
    assert!(obs.set.value(metric_ids::CKPT_WRITES) > 0);
    assert!(obs.set.value(metric_ids::CKPT_BYTES_WRITTEN) > 0);
    let write_hist = obs.set.hist(metric_ids::FS_WRITE_NS).expect("histogram");
    assert_eq!(write_hist.count, obs.set.value(metric_ids::FS_WRITES));
    assert!(!obs.spans.is_empty(), "fs spans collected");
    assert!(report.sim.events_processed > 0);
}

#[test]
fn chrome_trace_is_valid_json_with_expected_fields() {
    let cfg = HeatConfig::small();
    let report = metered_run(&cfg);
    let json = report.chrome_trace_json().expect("trace+metrics enabled");
    let doc = Json::parse(&json).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases = 0u32;
    let mut spans = 0u32;
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts present");
        let pid = e.get("pid").and_then(Json::as_u64).expect("pid present");
        assert!(pid < cfg.n_ranks() as u64);
        match e.get("tid").and_then(Json::as_u64) {
            Some(0) => phases += 1,
            Some(1) => spans += 1,
            other => panic!("unexpected tid {other:?}"),
        }
    }
    assert!(phases > 0, "MPI phase lane populated");
    assert!(spans > 0, "subsystem span lane populated");
}

#[test]
fn metrics_snapshot_json_includes_engine_section() {
    let cfg = HeatConfig::small();
    let report = metered_run(&cfg);
    let json = report.metrics_json().expect("metrics enabled");
    let doc = Json::parse(&json).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("xsim-metrics-v1")
    );
    let engine = doc.get("engine").expect("engine section");
    assert!(
        engine
            .get("events_processed")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let metrics = doc.get("metrics").expect("metrics section");
    assert!(
        metrics.get("fs.writes").is_some(),
        "per-metric entries present"
    );
}

#[test]
fn metrics_disabled_leaves_no_observability_state() {
    let cfg = HeatConfig::small();
    let report = SimBuilder::new(cfg.n_ranks())
        .net(NetModel::small(cfg.n_ranks()))
        .run(heat3d::program(cfg.clone()))
        .expect("heat3d run");
    assert!(report.metrics.is_none());
    assert!(report.metrics_json().is_none());
    assert!(report.chrome_trace_json().is_none());
}

#[test]
fn metrics_are_engine_independent() {
    let cfg = HeatConfig::small();
    let run = |workers: usize| {
        SimBuilder::new(cfg.n_ranks())
            .net(NetModel::small(cfg.n_ranks()))
            .fs_model(FsModel::typical_pfs())
            .workers(workers)
            .metrics(true)
            .run(heat3d::program(cfg.clone()))
            .expect("heat3d run")
    };
    let a = run(1);
    let b = run(3);
    let (ma, mb) = (a.metrics.unwrap(), b.metrics.unwrap());
    for id in 0..xsim::obs::SPEC.len() {
        // Volatile metrics (window counts, steal counts, barrier waits…)
        // describe the execution shape, which legitimately varies with
        // the worker count; everything else must match exactly.
        if xsim::obs::SPEC[id].volatile {
            continue;
        }
        assert_eq!(
            ma.set.value(id),
            mb.set.value(id),
            "metric {} differs across engines",
            xsim::obs::SPEC[id].name
        );
    }
    assert_eq!(ma.spans, mb.spans, "spans differ across engines");
}
