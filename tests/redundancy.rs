//! RedMPI-style redundancy integration tests (paper §II-C): soft errors
//! injected into one replica are detected by double redundancy and
//! corrected by triple redundancy.

use bytes::Bytes;
use xsim::fault::soft::{self, SoftErrorPlan};
use xsim::mpi::{Redundant, Verdict};
use xsim::prelude::*;

/// Each rank computes a state value; ranks hit by a soft error apply the
/// bit flip before the verification point.
async fn replica_step(mpi: &MpiCtx) -> u64 {
    mpi.compute(Work::native_time(SimTime::from_millis(10)))
        .await;
    let mut state = [0u8; 8];
    state.copy_from_slice(&0xDEAD_BEEF_0123_4567u64.to_le_bytes());
    for flip in soft::poll_flips() {
        soft::apply_flip(&mut state, flip);
    }
    u64::from_le_bytes(state)
}

#[test]
fn triple_redundancy_corrects_injected_soft_error() {
    // 4 logical ranks × 3 replicas = 12 ranks; flip a bit in world rank
    // 5 (logical 1, replica 2).
    let plan = SoftErrorPlan::new().with_flip(5, SimTime::from_millis(5), 13);
    let report = SimBuilder::new(12)
        .net(NetModel::small(12))
        .setup_hook(plan.install_hook())
        .run_app(|mpi| async move {
            let red = Redundant::split(&mpi, 3).await?;
            assert_eq!(red.logical_size, 4);
            assert_eq!(mpi.comm_size(red.work)?, 4);
            assert_eq!(mpi.comm_size(red.team)?, 3);

            let state = replica_step(&mpi).await;
            let (corrected, verdict) = red.verify_u64(&mpi, state).await?;
            assert_eq!(corrected, 0xDEAD_BEEF_0123_4567, "majority value wins");
            if red.logical_rank == 1 {
                assert_eq!(
                    verdict,
                    Verdict::Corrected { outvoted: 1 },
                    "the corrupted team must detect and out-vote the flip"
                );
            } else {
                assert_eq!(verdict, Verdict::Consistent);
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn double_redundancy_detects_but_cannot_correct() {
    // Detection-only mode ("disabling the online correction and keeping
    // replicas isolated"): the divergence is reported, not escalated.
    let plan = SoftErrorPlan::new().with_flip(3, SimTime::from_millis(5), 42);
    let report = SimBuilder::new(8)
        .net(NetModel::small(8))
        .setup_hook(plan.install_hook())
        .run_app(|mpi| async move {
            let red = Redundant::split(&mpi, 2).await?;
            let state = replica_step(&mpi).await;
            let (_, verdict) = red.verify_u64_detect(&mpi, state).await?;
            if red.logical_rank == 1 {
                assert_eq!(verdict, Verdict::Uncorrectable, "r=2 only detects");
            } else {
                assert_eq!(verdict, Verdict::Consistent);
            }
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn uncorrectable_divergence_escalates_to_process_failure() {
    // Correcting mode with r = 2: the team cannot vote out the corrupt
    // replica, so `verify` must not let either replica proceed with
    // possibly-corrupt state — the whole team fail-stops into the
    // process-failure path instead of silently continuing.
    let plan = SoftErrorPlan::new().with_flip(3, SimTime::from_millis(5), 42);
    let report = SimBuilder::new(8)
        .net(NetModel::small(8))
        .setup_hook(plan.install_hook())
        .run_app(|mpi| async move {
            let red = Redundant::split(&mpi, 2).await?;
            let state = replica_step(&mpi).await;
            let (corrected, verdict) = red.verify_u64(&mpi, state).await?;
            // Only teams that agreed make it past the verification point.
            assert_eq!(verdict, Verdict::Consistent);
            assert_eq!(corrected, 0xDEAD_BEEF_0123_4567);
            assert_ne!(red.logical_rank, 1, "diverged team must not proceed");
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::FailedOnly);
    // Both replicas of logical rank 1 (world ranks 2 and 3) fail-stopped.
    let mut dead: Vec<usize> = report.sim.failures.iter().map(|f| f.rank.idx()).collect();
    dead.sort_unstable();
    assert_eq!(dead, vec![2, 3]);
}

#[test]
fn replica_spheres_run_independent_applications() {
    // The work communicator lets the unmodified application run per
    // sphere: a ring exchange inside each sphere must not cross spheres.
    let report = SimBuilder::new(6)
        .net(NetModel::small(6))
        .run_app(|mpi| async move {
            let red = Redundant::split(&mpi, 2).await?;
            let w = red.work;
            let size = mpi.comm_size(w)?;
            let me = mpi.comm_rank(w)?;
            let right = (me + 1) % size;
            let left = (me + size - 1) % size;
            let sreq = mpi
                .isend(w, right, 7, Bytes::from(vec![red.replica as u8]))
                .await?;
            let msg = mpi.recv(w, Some(left), Some(7)).await?;
            mpi.wait(w, sreq).await?;
            assert_eq!(
                msg.data[0] as usize, red.replica,
                "traffic crossed replica spheres"
            );
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}

#[test]
fn split_rejects_bad_degrees() {
    let report = SimBuilder::new(4)
        .net(NetModel::small(4))
        .errhandler(ErrHandler::Return)
        .run_app(|mpi| async move {
            assert!(Redundant::split(&mpi, 1).await.is_err());
            assert!(Redundant::split(&mpi, 3).await.is_err(), "4 % 3 != 0");
            mpi.finalize();
            Ok(())
        })
        .unwrap();
    assert_eq!(report.sim.exit, ExitKind::Completed);
}
